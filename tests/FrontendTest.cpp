//===- FrontendTest.cpp - Bit-field lowering tests (Section 5.3) ---------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "frontend/BitFields.h"

#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "sem/Interp.h"

#include <gtest/gtest.h>

using namespace frost;
using namespace frost::frontend;
using frost::sem::DeterministicOracle;
using frost::sem::ExecResult;
using frost::sem::Interpreter;
using frost::sem::SemanticsConfig;

namespace {

struct FrontendTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "fe"};
  RecordType Rec; // struct { unsigned lo:4; unsigned mid:12; unsigned hi:16; }

  FrontendTest() {
    Rec.WordBits = 32;
    Rec.add("lo", 4).add("mid", 12).add("hi", 16);
  }

  /// Builds: alloca record; store Field = arg0; return field \p ReadBack.
  Function *makeStoreThenLoad(const std::string &Name,
                              const std::string &StoreField,
                              const std::string &LoadField,
                              BitFieldLowering Lowering,
                              bool InitializeFirst) {
    auto *I32 = Ctx.intTy(32);
    Function *F = M.createFunction(Name, Ctx.types().fnTy(I32, {I32}));
    IRBuilder B(Ctx, F->addBlock("entry"));
    Value *P = B.alloca_(I32, "rec");
    if (InitializeFirst)
      B.store(Ctx.getInt(32, 0xABCD1234), P);
    emitFieldStore(B, P, Rec, StoreField, F->arg(0), Lowering);
    B.ret(emitFieldLoad(B, P, Rec, LoadField, Lowering));
    EXPECT_TRUE(verifyFunction(*F));
    return F;
  }

  ExecResult run(Function *F, uint64_t Arg) {
    DeterministicOracle O;
    Interpreter I(SemanticsConfig::proposed(), O);
    return I.run(*F, {sem::Value::concrete(BitVec(32, Arg))});
  }
};

TEST_F(FrontendTest, FieldRoundTripOnInitializedRecord) {
  Function *F = makeStoreThenLoad("rt", "mid", "mid",
                                  BitFieldLowering::Proposed, true);
  ExecResult R = run(F, 0xFFF);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 0xFFFu);
}

TEST_F(FrontendTest, NeighbouringFieldsSurviveOnInitializedRecord) {
  // Store to "mid" must not clobber "hi" (= 0xABCD from the init pattern).
  Function *F = makeStoreThenLoad("nb", "mid", "hi",
                                  BitFieldLowering::Proposed, true);
  ExecResult R = run(F, 0x7);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 0xABCDu);
}

TEST_F(FrontendTest, LegacyLoweringPoisonsWholeRecordOnFirstStore) {
  // The Section 5.3 problem: without freeze, the first store to an
  // uninitialized record merges poison into every field.
  Function *F = makeStoreThenLoad("legacy", "lo", "lo",
                                  BitFieldLowering::Legacy, false);
  ExecResult R = run(F, 0x5);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison()) << R.str();
}

TEST_F(FrontendTest, ProposedLoweringFreezesTheFirstStore) {
  // With the one-line fix, the stored field reads back exactly.
  Function *F = makeStoreThenLoad("fixed", "lo", "lo",
                                  BitFieldLowering::Proposed, false);
  ExecResult R = run(F, 0x5);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 0x5u) << R.str();
  // Exactly one freeze was emitted.
  unsigned Freezes = 0;
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB)
      Freezes += I->getOpcode() == Opcode::Freeze;
  EXPECT_EQ(Freezes, 1u);
}

TEST_F(FrontendTest, ProposedLoweringNeighboursStayFrozenNotPoison) {
  // After a first store to "lo", reading "hi" gives a frozen (arbitrary but
  // defined) value, never poison.
  Function *F = makeStoreThenLoad("fr.nb", "lo", "hi",
                                  BitFieldLowering::Proposed, false);
  ExecResult R = run(F, 0x5);
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(R.Ret->scalar().isPoison());
}

TEST_F(FrontendTest, VectorLoweringNeedsNoFreeze) {
  // Section 5.3's superior alternative: per-lane poison confinement means
  // the stored field reads back without any freeze.
  Function *F = makeStoreThenLoad("vec", "lo", "lo",
                                  BitFieldLowering::Vector, false);
  ExecResult R = run(F, 0x5);
  ASSERT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 0x5u) << R.str();
  unsigned Freezes = 0;
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB)
      Freezes += I->getOpcode() == Opcode::Freeze;
  EXPECT_EQ(Freezes, 0u);
}

TEST_F(FrontendTest, VectorLoweringPreservesNeighbours) {
  Function *F = makeStoreThenLoad("vec.nb", "mid", "hi",
                                  BitFieldLowering::Vector, true);
  ExecResult R = run(F, 0x7);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 0xABCDu);
}

TEST_F(FrontendTest, AllThreeFieldsIndependentlyAddressable) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("all", Ctx.types().fnTy(I32, {I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *P = B.alloca_(I32, "rec");
  emitFieldStore(B, P, Rec, "lo", Ctx.getInt(32, 0x9), // 4 bits.
                 BitFieldLowering::Proposed);
  emitFieldStore(B, P, Rec, "mid", Ctx.getInt(32, 0x123),
                 BitFieldLowering::Proposed);
  emitFieldStore(B, P, Rec, "hi", F->arg(0), BitFieldLowering::Proposed);
  Value *Lo = emitFieldLoad(B, P, Rec, "lo");
  Value *Mid = emitFieldLoad(B, P, Rec, "mid");
  Value *Hi = emitFieldLoad(B, P, Rec, "hi");
  Value *T = B.xor_(Lo, Mid);
  B.ret(B.xor_(T, Hi));
  ASSERT_TRUE(verifyFunction(*F));
  ExecResult R = run(F, 0xBEEF);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 0x9u ^ 0x123u ^ 0xBEEFu);
}

} // namespace
