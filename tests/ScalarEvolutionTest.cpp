//===- ScalarEvolutionTest.cpp - SCEV and the Section 10.1 freeze gap ----------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/ScalarEvolution.h"

#include "ir/Context.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace frost;

namespace {

struct SCEVTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "scev"};

  Function *parse(const std::string &Text, const std::string &Name) {
    ParseResult R = parseModule(Text, M);
    EXPECT_TRUE(R.Ok) << R.Error;
    Function *F = M.getFunction(Name);
    EXPECT_TRUE(F && verifyFunction(*F));
    return F;
  }

  Loop *onlyLoop([[maybe_unused]] Function *F,
                 [[maybe_unused]] DominatorTree &DT, LoopInfo &LI) {
    EXPECT_EQ(LI.topLevel().size(), 1u);
    return LI.topLevel().front();
  }
};

const char *CountedLoop = R"(
define i32 @f(i32 %x) {
entry:
  br label %head

head:
  %i = phi i32 [ 2, %entry ], [ %i1, %body ]
  %c = icmp slt i32 %i, 20
  br i1 %c, label %body, label %exit

body:
  %i1 = add nsw i32 %i, 3
  br label %head

exit:
  ret i32 %i
}
)";

TEST_F(SCEVTest, RecognisesAffineAddRec) {
  Function *F = parse(CountedLoop, "f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  Loop *L = onlyLoop(F, DT, LI);
  ScalarEvolution SE(*F, DT, LI);

  PhiNode *IV = L->header()->phis().front();
  auto Rec = SE.asAddRec(IV, *L);
  ASSERT_TRUE(Rec.has_value());
  EXPECT_EQ(Rec->Step.sext(), 3);
  EXPECT_TRUE(Rec->NSW);
  EXPECT_EQ(cast<ConstantInt>(Rec->Start)->value().zext(), 2u);

  // Loop-invariant values classify as {v, +, 0}.
  auto Inv = SE.asAddRec(F->arg(0), *L);
  ASSERT_TRUE(Inv.has_value());
  EXPECT_TRUE(Inv->Step.isZero());
}

TEST_F(SCEVTest, ConstantTripCount) {
  Function *F = parse(CountedLoop, "f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  Loop *L = onlyLoop(F, DT, LI);
  ScalarEvolution SE(*F, DT, LI);
  // i = 2, 5, 8, 11, 14, 17 then 20 fails slt: 6 iterations.
  EXPECT_EQ(SE.constantTripCount(*L).value_or(0), 6u);
}

TEST_F(SCEVTest, FreezeBlocksAnalysisByDefault) {
  // Section 10.1: "[scalar evolution] currently fails to analyze
  // expressions involving freeze."
  Function *F = parse(R"(
define i32 @g(i32 %x) {
entry:
  br label %head

head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %fi = freeze i32 %i
  %c = icmp slt i32 %fi, 10
  br i1 %c, label %body, label %exit

body:
  %i1 = add nsw i32 %i, 1
  br label %head

exit:
  ret i32 %i
}
)",
                      "g");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  Loop *L = onlyLoop(F, DT, LI);

  ScalarEvolution Default(*F, DT, LI, /*FreezeAware=*/false);
  EXPECT_FALSE(Default.constantTripCount(*L).has_value());

  // The freeze-aware mode may NOT look through this freeze either: %i's
  // recurrence includes an nsw add, which can produce poison, so the
  // frozen value follows no recurrence. Being aware of freeze does not
  // mean ignoring it.
  ScalarEvolution Aware(*F, DT, LI, /*FreezeAware=*/true);
  EXPECT_FALSE(Aware.asAddRec(L->header()->firstNonPhi(), *L).has_value());
}

TEST_F(SCEVTest, FreezeAwareSeesThroughProvablyNonPoisonFreeze) {
  // freeze of a non-poison value is the identity; the aware analysis can
  // exploit that (the Section 10.1 "must learn how to deal with freeze").
  Function *F = parse(R"(
define i32 @h(i32 %x) {
entry:
  br label %head

head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp ult i32 %i, 8
  br i1 %c, label %body, label %exit

body:
  %fr = freeze i32 7
  %i1 = add nsw i32 %i, 1
  br label %head

exit:
  ret i32 %i
}
)",
                      "h");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  Loop *L = onlyLoop(F, DT, LI);
  ScalarEvolution Aware(*F, DT, LI, /*FreezeAware=*/true);
  EXPECT_EQ(Aware.constantTripCount(*L).value_or(0), 8u);

  // The frozen constant itself classifies as an invariant add-rec when
  // freeze-aware.
  Instruction *Fr = nullptr;
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB)
      if (I->getOpcode() == Opcode::Freeze)
        Fr = I;
  ASSERT_NE(Fr, nullptr);
  auto Rec = Aware.asAddRec(Fr, *L);
  ASSERT_TRUE(Rec.has_value());
  EXPECT_TRUE(Rec->Step.isZero());
}

TEST_F(SCEVTest, NoTripCountForWrappingLoop) {
  // An exit comparison that the induction never satisfies: wraps forever.
  Function *F = parse(R"(
define i32 @w(i32 %x) {
entry:
  br label %head

head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp ne i32 %i, 7
  br i1 %c, label %body, label %exit

body:
  %i1 = add i32 %i, 2
  br label %head

exit:
  ret i32 %i
}
)",
                      "w");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  Loop *L = onlyLoop(F, DT, LI);
  ScalarEvolution SE(*F, DT, LI);
  // i visits even numbers only; i != 7 never fails: no constant trip count.
  EXPECT_FALSE(SE.constantTripCount(*L).has_value());
}

} // namespace
