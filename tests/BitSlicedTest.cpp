//===- BitSlicedTest.cpp - Bit-sliced engine differential parity --------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bit-sliced evaluation engine's contract is that it is observationally
/// identical to the scalar engine: same verdicts, same counterexample
/// messages, same InputsChecked/PathsExplored counters, byte-identical
/// campaign reports at any --jobs. These tests pin that contract
/// differentially — whole campaign spaces (enumerated, random, legacy
/// pipelines that really miscompile, legacy semantics with undef) run under
/// both engines and every observable is compared.
///
//===----------------------------------------------------------------------===//

#include "sem/BitSliced.h"

#include "fuzz/Enumerate.h"
#include "ir/Cloning.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "sem/Interp.h"
#include "support/Stats.h"
#include "tv/Campaign.h"
#include "tv/Refinement.h"

#include <gtest/gtest.h>

using namespace frost;
using namespace frost::tv;
using frost::sem::Lane;
using frost::sem::SemanticsConfig;
using frost::sem::SlicedFunction;
using frost::sem::SlicedValue;

namespace {

struct BitSlicedTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "bs"};

  Function *fn(const std::string &Name, Type *Ret, std::vector<Type *> Params) {
    return M.createFunction(Name, Ctx.types().fnTy(Ret, std::move(Params)));
  }

  Function *parse(const std::string &Text) {
    ParseResult P = parseModule(Text, M);
    EXPECT_TRUE(P) << P.Error;
    return M.functions().back();
  }
};

/// The campaign-level tv.campaign.* counters both engines must agree on.
/// (tv.bitsliced_batches / tv.scalar_fallbacks are engine diagnostics and
/// necessarily differ.)
std::vector<std::pair<std::string, uint64_t>> campaignCounters() {
  std::vector<std::pair<std::string, uint64_t>> Out;
  for (const auto &[Name, Value] : stats::snapshot())
    if (Name.rfind("tv.campaign.", 0) == 0 &&
        Name != "tv.campaign.shards_done") // Timing-independent but bumped
                                           // once per shard either way; keep
                                           // it anyway — it is identical.
      Out.push_back({Name, Value});
  return Out;
}

/// Runs \p Opts under both engines (and the bit-sliced engine at --jobs 3)
/// and asserts every observable matches: report bytes, exit-status
/// classification, and the tv.campaign.* counters.
void expectCampaignParity(tv::CampaignOptions Opts) {
  Opts.TV.Engine = TVEngine::Scalar;
  Opts.Jobs = 1;
  stats::reset();
  tv::CampaignResult Scalar = tv::runCampaign(Opts);
  auto ScalarCounters = campaignCounters();

  Opts.TV.Engine = TVEngine::BitSliced;
  stats::reset();
  tv::CampaignResult Sliced = tv::runCampaign(Opts);
  auto SlicedCounters = campaignCounters();

  Opts.Jobs = 3;
  tv::CampaignResult SlicedPar = tv::runCampaign(Opts);

  EXPECT_EQ(Scalar.report(), Sliced.report());
  EXPECT_EQ(Scalar.report(), SlicedPar.report());
  EXPECT_EQ(Scalar.Valid, Sliced.Valid);
  EXPECT_EQ(Scalar.Invalid, Sliced.Invalid);
  EXPECT_EQ(Scalar.Inconclusive, Sliced.Inconclusive);
  EXPECT_EQ(Scalar.InputsChecked, Sliced.InputsChecked);
  EXPECT_EQ(Scalar.PathsExplored, Sliced.PathsExplored);
  EXPECT_EQ(ScalarCounters, SlicedCounters);
  EXPECT_EQ(Scalar.BitslicedBatches, 0u);
}

//===----------------------------------------------------------------------===//
// Campaign-level differential parity
//===----------------------------------------------------------------------===//

TEST_F(BitSlicedTest, EnumCampaignParityProposed) {
  tv::CampaignOptions Opts;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.Width = 2;
  Opts.Enum.NumArgs = 2;
  Opts.Enum.WithPoison = true;
  Opts.Enum.WithFlags = true;
  Opts.Enum.WithSelect = true;
  Opts.MaxFunctions = 600;
  Opts.TV.CompareMemory = false;
  expectCampaignParity(Opts);
}

TEST_F(BitSlicedTest, EnumCampaignParityLegacyPipelineFindsSameBugs) {
  // The legacy pipeline really miscompiles in this space: parity must hold
  // for counterexample messages, dedup fingerprints, and blame attribution,
  // not just for clean runs.
  tv::CampaignOptions Opts;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.Width = 1;
  Opts.Enum.NumArgs = 3;
  Opts.Enum.Opcodes.clear(); // icmp/select/freeze only.
  Opts.Enum.WithPoison = true;
  Opts.Pipeline = PipelineMode::Legacy;
  Opts.MaxFunctions = 600;
  Opts.TV.CompareMemory = false;
  expectCampaignParity(Opts);
}

TEST_F(BitSlicedTest, EnumCampaignParityLegacySemanticsWithUndef) {
  // Legacy semantics: undef exists (undef argument lanes and over-shift
  // results exercise the per-lane scalar fallback), shifts included.
  tv::CampaignOptions Opts;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.Width = 2;
  Opts.Enum.NumArgs = 2;
  Opts.Enum.Opcodes = {Opcode::Shl, Opcode::LShr, Opcode::AShr, Opcode::Add};
  Opts.Enum.WithPoison = true;
  Opts.Semantics = SemanticsConfig::legacyUnswitch();
  Opts.Pipeline = PipelineMode::Legacy;
  Opts.MaxFunctions = 500;
  Opts.TV.CompareMemory = false;
  expectCampaignParity(Opts);
}

TEST_F(BitSlicedTest, RandomCampaignParityFallsBackWholeFunction) {
  // Random functions have control flow and memory: every one is outside the
  // sliced subset, so the bit-sliced engine must degrade to exactly the
  // scalar engine (plus fallback accounting).
  tv::CampaignOptions Opts;
  Opts.Source = tv::CampaignSource::Random;
  Opts.RandomFunctions = 24;
  Opts.Random.Statements = 10;
  Opts.Random.Width = 4;
  expectCampaignParity(Opts);
}

TEST_F(BitSlicedTest, BitslicedCampaignCountsBatchesAndFallbacks) {
  tv::CampaignOptions Opts;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.Width = 2;
  Opts.Enum.NumArgs = 2;
  Opts.Enum.WithPoison = true;
  Opts.Enum.WithSelect = true; // Nondet-free under proposed semantics...
  Opts.Semantics = SemanticsConfig::legacyUnswitch(); // ...so use legacy:
  // undef inputs force per-lane fallbacks.
  Opts.MaxFunctions = 300;
  Opts.TV.CompareMemory = false;
  Opts.TV.Engine = TVEngine::BitSliced;
  stats::reset();
  tv::CampaignResult R = tv::runCampaign(Opts);
  EXPECT_GT(R.BitslicedBatches, 0u);
  EXPECT_GT(R.ScalarFallbacks, 0u);
  EXPECT_EQ(R.BitslicedBatches, stats::get("tv.bitsliced_batches"));
  EXPECT_EQ(R.ScalarFallbacks, stats::get("tv.scalar_fallbacks"));
  // The campaign summary surfaces the engine counters.
  EXPECT_NE(R.summary().find("bitsliced:"), std::string::npos);
  EXPECT_NE(R.summary().find("scalar fallback"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// checkRefinement-level parity over an enumerated space
//===----------------------------------------------------------------------===//

TEST_F(BitSlicedTest, IdentityRefinementParityOverEnumeratedSpace) {
  // Src == Tgt refines trivially; what matters is that both engines agree
  // on InputsChecked/PathsExplored for every function shape, including the
  // div-free flagged arithmetic and icmp/select/freeze combinations.
  fuzz::EnumOptions E;
  E.NumInsts = 2;
  E.Width = 3;
  E.NumArgs = 2;
  E.WithPoison = true;
  E.WithFlags = true;
  E.WithSelect = true;
  for (SemanticsConfig Config :
       {SemanticsConfig::proposed(), SemanticsConfig::legacyUnswitch()}) {
    uint64_t N = 0;
    fuzz::enumerateFunctions(M, E, [&](Function &F) {
      if (++N > 250)
        return false;
      TVOptions Opts;
      Opts.CompareMemory = false;
      TVResult Scalar = checkRefinement(F, F, Config, Opts);
      Opts.Engine = TVEngine::BitSliced;
      TVResult Sliced = checkRefinement(F, F, Config, Opts);
      EXPECT_EQ(int(Scalar.St), int(Sliced.St)) << printFunction(F);
      EXPECT_EQ(Scalar.Message, Sliced.Message) << printFunction(F);
      EXPECT_EQ(Scalar.InputsChecked, Sliced.InputsChecked)
          << printFunction(F);
      EXPECT_EQ(Scalar.PathsExplored, Sliced.PathsExplored)
          << printFunction(F);
      return true;
    });
  }
}

TEST_F(BitSlicedTest, DivisionParityIncludingUB) {
  // Division is evaluated per-lane inside the batch (gather/foldBinLane/
  // scatter) and is the only immediate-UB producer in the sliced subset:
  // check a function whose UB pattern varies across the input space, plus
  // an sdiv-overflow shape, against the scalar engine.
  for (const char *Text : {
           "define i3 @udiv(i3 %0, i3 %1) {\nentry:\n"
           "  %2 = udiv i3 %0, %1\n  ret i3 %2\n}\n",
           "define i3 @sdiv(i3 %0, i3 %1) {\nentry:\n"
           "  %2 = sdiv i3 %0, %1\n  ret i3 %2\n}\n",
           "define i3 @srem(i3 %0, i3 %1) {\nentry:\n"
           "  %2 = srem i3 %0, %1\n  %3 = add i3 %2, %0\n  ret i3 %3\n}\n",
       }) {
    Function *F = parse(Text);
    for (SemanticsConfig Config :
         {SemanticsConfig::proposed(), SemanticsConfig::legacyUnswitch()}) {
      TVOptions Opts;
      Opts.CompareMemory = false;
      TVResult Scalar = checkRefinement(*F, *F, Config, Opts);
      Opts.Engine = TVEngine::BitSliced;
      TVResult Sliced = checkRefinement(*F, *F, Config, Opts);
      EXPECT_EQ(int(Scalar.St), int(Sliced.St)) << Text;
      EXPECT_EQ(Scalar.InputsChecked, Sliced.InputsChecked) << Text;
      EXPECT_EQ(Scalar.PathsExplored, Sliced.PathsExplored) << Text;
    }
  }
}

TEST_F(BitSlicedTest, MiscompileMessageParity) {
  // A known-unsound rewrite: sliced and scalar must produce the identical
  // counterexample message (same first failing input, same rendering).
  Function *Src = parse("define i2 @s(i2 %0) {\nentry:\n"
                        "  %1 = add nsw i2 %0, 1\n  ret i2 %1\n}\n");
  Function *Tgt = parse("define i2 @t(i2 %0) {\nentry:\n"
                        "  %1 = add i2 %0, 1\n  %2 = add i2 %1, 1\n"
                        "  ret i2 %2\n}\n");
  TVOptions Opts;
  Opts.CompareMemory = false;
  TVResult Scalar = checkRefinement(*Src, *Tgt, SemanticsConfig::proposed(),
                                    Opts);
  Opts.Engine = TVEngine::BitSliced;
  TVResult Sliced = checkRefinement(*Src, *Tgt, SemanticsConfig::proposed(),
                                    Opts);
  ASSERT_TRUE(Scalar.invalid());
  ASSERT_TRUE(Sliced.invalid());
  EXPECT_EQ(Scalar.Message, Sliced.Message);
  EXPECT_EQ(Scalar.InputsChecked, Sliced.InputsChecked);
  EXPECT_EQ(Scalar.PathsExplored, Sliced.PathsExplored);
}

//===----------------------------------------------------------------------===//
// Flat-lane enumeration parity
//===----------------------------------------------------------------------===//

TEST_F(BitSlicedTest, LaneEnumerationMatchesValueEnumeration) {
  auto *I2 = Ctx.intTy(2);
  auto *I4 = Ctx.intTy(4);
  Function *F = fn("args", Ctx.voidTy(), {I2, I4, I2});
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.retVoid();

  for (SemanticsConfig Config :
       {SemanticsConfig::proposed(), SemanticsConfig::legacyUnswitch()}) {
    for (uint64_t MaxInputs : {uint64_t(1) << 14, uint64_t(40), uint64_t(7)}) {
      TVOptions Opts;
      Opts.MaxInputs = MaxInputs;
      std::vector<std::vector<sem::Value>> Tuples;
      ASSERT_TRUE(enumerateInputTuples(*F, Config, Opts, Tuples));
      std::vector<Lane> Flat;
      unsigned NumArgs = 0;
      ASSERT_TRUE(enumerateInputLanes(*F, Config, Opts, Flat, NumArgs));
      ASSERT_EQ(NumArgs, 3u);
      ASSERT_EQ(Flat.size(), Tuples.size() * NumArgs);
      for (size_t R = 0; R != Tuples.size(); ++R)
        for (unsigned A = 0; A != NumArgs; ++A)
          EXPECT_TRUE(Flat[R * NumArgs + A] == Tuples[R][A].scalar())
              << "row " << R << " arg " << A << " max " << MaxInputs;
    }
  }
}

//===----------------------------------------------------------------------===//
// SlicedFunction unit behaviour
//===----------------------------------------------------------------------===//

TEST_F(BitSlicedTest, CompileRejectsOutsideSubset) {
  std::string Why;

  // Control flow.
  Function *Br = parse("define i1 @br(i1 %0) {\nentry:\n"
                       "  br i1 %0, label %a, label %b\na:\n  ret i1 1\n"
                       "b:\n  ret i1 0\n}\n");
  EXPECT_FALSE(SlicedFunction::compile(*Br, SemanticsConfig::proposed(),
                                       &Why));
  EXPECT_NE(Why.find("control flow"), std::string::npos);

  // Memory.
  Function *Mem = parse("define i8 @mem() {\nentry:\n"
                        "  %0 = alloca i8\n  %1 = load i8, i8* %0\n"
                        "  ret i8 %1\n}\n");
  EXPECT_FALSE(SlicedFunction::compile(*Mem, SemanticsConfig::proposed(),
                                       &Why));

  // Width above MaxWidth.
  Function *Wide = parse("define i16 @wide(i16 %0) {\nentry:\n"
                         "  %1 = add i16 %0, %0\n  ret i16 %1\n}\n");
  EXPECT_FALSE(SlicedFunction::compile(*Wide, SemanticsConfig::proposed(),
                                       &Why));

  // In range: compiles.
  Function *Ok = parse("define i4 @ok(i4 %0) {\nentry:\n"
                       "  %1 = mul i4 %0, 3\n  ret i4 %1\n}\n");
  EXPECT_TRUE(SlicedFunction::compile(*Ok, SemanticsConfig::proposed(),
                                      &Why));
}

TEST_F(BitSlicedTest, BatchLanesMatchInterpreterLaneByLane) {
  // Every (arg0, arg1) pair over i3 in one 64-lane batch, compared against
  // individual interpreter runs: concrete results, poison, and UB must all
  // agree per lane.
  Function *F = parse("define i3 @f(i3 %0, i3 %1) {\nentry:\n"
                      "  %2 = sub nsw i3 %0, %1\n"
                      "  %3 = icmp slt i3 %2, %1\n"
                      "  %4 = select i1 %3, i3 %2, i3 %0\n"
                      "  ret i3 %4\n}\n");
  SemanticsConfig Config = SemanticsConfig::proposed();
  auto SF = SlicedFunction::compile(*F, Config);
  ASSERT_TRUE(SF);

  SlicedValue Args[2];
  Args[0].Width = Args[1].Width = 3;
  for (unsigned J = 0; J != 64; ++J) {
    Args[0].setLane(J, Lane::concrete(BitVec(3, J & 7)));
    Args[1].setLane(J, Lane::concrete(BitVec(3, J >> 3)));
  }
  sem::SlicedResult R = SF->run(Args, ~uint64_t(0));
  EXPECT_EQ(R.NeedScalar, 0u);
  EXPECT_EQ(R.UB, 0u);
  ASSERT_TRUE(R.HasRet);

  for (unsigned J = 0; J != 64; ++J) {
    sem::DeterministicOracle Oracle;
    sem::Interpreter I(Config, Oracle);
    std::vector<sem::Value> In = {
        sem::Value(Lane::concrete(BitVec(3, J & 7))),
        sem::Value(Lane::concrete(BitVec(3, J >> 3)))};
    sem::ExecResult E = I.run(*F, In);
    ASSERT_TRUE(E.ok());
    EXPECT_TRUE(R.Ret.getLane(J) == E.Ret->scalar()) << "lane " << J;
  }
}

} // namespace
