//===- ThreadPoolTest.cpp - Work-stealing thread pool tests -------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign engine's correctness rests on the pool: every submitted task
/// runs exactly once, exceptions surface instead of vanishing, and shutdown
/// never drops queued work. These tests pin those contracts.
///
//===----------------------------------------------------------------------===//

#include "support/TaskQueue.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

using namespace frost;

namespace {

TEST(TaskQueueTest, OwnerPopsLIFOThievesStealFIFO) {
  TaskQueue Q;
  std::vector<int> Order;
  for (int I = 0; I != 3; ++I)
    Q.push([&Order, I] { Order.push_back(I); });
  EXPECT_EQ(Q.size(), 3u);

  (*Q.steal())(); // Oldest task: 0.
  (*Q.pop())();   // Newest task: 2.
  (*Q.pop())();   // Remaining: 1.
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Order, (std::vector<int>{0, 2, 1}));
  EXPECT_FALSE(Q.pop().has_value());
  EXPECT_FALSE(Q.steal().has_value());
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<unsigned>> Runs(500);
  {
    ThreadPool Pool(4);
    for (unsigned I = 0; I != Runs.size(); ++I)
      Pool.submit([&Runs, I] { Runs[I].fetch_add(1); });
    Pool.wait();
  }
  for (unsigned I = 0; I != Runs.size(); ++I)
    EXPECT_EQ(Runs[I].load(), 1u) << "task " << I;
}

TEST(ThreadPoolTest, AsyncReturnsResultsInSubmissionOrder) {
  ThreadPool Pool(4);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I != 100; ++I)
    Futures.push_back(Pool.async([I] { return I * I; }));
  // Futures pair results with their submissions regardless of the order the
  // workers actually ran them in.
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Futures[I].get(), I * I);
}

TEST(ThreadPoolTest, AsyncPropagatesExceptions) {
  ThreadPool Pool(2);
  auto Ok = Pool.async([] { return 7; });
  auto Bad = Pool.async(
      []() -> int { throw std::runtime_error("poison leaked"); });
  EXPECT_EQ(Ok.get(), 7);
  try {
    Bad.get();
    FAIL() << "expected the task's exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "poison leaked");
  }
}

TEST(ThreadPoolTest, WaitRethrowsFirstSubmitException) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Ran{0};
  Pool.submit([&] { Ran.fetch_add(1); });
  Pool.submit([] { throw std::logic_error("shard failed"); });
  Pool.submit([&] { Ran.fetch_add(1); });
  try {
    Pool.wait();
    FAIL() << "expected the captured exception";
  } catch (const std::logic_error &E) {
    EXPECT_STREQ(E.what(), "shard failed");
  }
  // The error is delivered once; the pool stays usable.
  Pool.submit([&] { Ran.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 3u);
}

TEST(ThreadPoolTest, WaitDeliversEveryCapturedException) {
  // Regression test: the pool used to keep only the first captured
  // exception, so a batch with several failing shards reported one failure
  // and silently swallowed the rest. Every captured exception must now be
  // delivered — one per wait() call, deterministically drained.
  ThreadPool Pool(4);
  constexpr unsigned Failures = 6;
  std::atomic<unsigned> Ran{0};
  for (unsigned I = 0; I != Failures; ++I)
    Pool.submit([I] { throw std::runtime_error("task " + std::to_string(I)); });
  for (unsigned I = 0; I != 50; ++I)
    Pool.submit([&Ran] { Ran.fetch_add(1); });

  std::multiset<std::string> Messages;
  for (unsigned Attempt = 0; Attempt != Failures; ++Attempt) {
    try {
      Pool.wait();
      FAIL() << "expected a captured exception on drain " << Attempt;
    } catch (const std::runtime_error &E) {
      Messages.insert(E.what());
    }
  }
  // All distinct failures were seen, none coalesced or dropped.
  EXPECT_EQ(Messages.size(), Failures);
  for (unsigned I = 0; I != Failures; ++I)
    EXPECT_EQ(Messages.count("task " + std::to_string(I)), 1u) << I;
  // The error queue is fully drained and the healthy tasks all ran.
  EXPECT_EQ(Pool.pendingErrors(), 0u);
  Pool.wait();
  EXPECT_EQ(Ran.load(), 50u);
}

TEST(ThreadPoolTest, PoolIsReusableAfterExceptionBurst) {
  // Regression test: after an error burst is drained, the pool must accept
  // and run fresh work exactly as a clean pool would — no sticky error
  // state, no dropped queues.
  ThreadPool Pool(4);
  for (unsigned I = 0; I != 8; ++I)
    Pool.submit([] { throw std::logic_error("burst"); });
  unsigned Delivered = 0;
  for (;;) {
    try {
      Pool.wait();
      break; // Clean wait(): the error queue is empty.
    } catch (const std::logic_error &) {
      ++Delivered;
    }
  }
  EXPECT_EQ(Delivered, 8u);

  std::vector<std::atomic<unsigned>> Runs(100);
  for (unsigned I = 0; I != Runs.size(); ++I)
    Pool.submit([&Runs, I] { Runs[I].fetch_add(1); });
  Pool.wait(); // Must not throw: all prior errors already delivered.
  for (unsigned I = 0; I != Runs.size(); ++I)
    EXPECT_EQ(Runs[I].load(), 1u) << "task " << I;
}

TEST(ThreadPoolTest, ThrowingTasksDoNotDropQueuedWork) {
  // A worker that hits a throwing task keeps draining its queue.
  ThreadPool Pool(1); // Single worker: every task shares one queue.
  std::atomic<unsigned> Ran{0};
  for (unsigned I = 0; I != 20; ++I) {
    Pool.submit([] { throw std::runtime_error("interleaved"); });
    Pool.submit([&Ran] { Ran.fetch_add(1); });
  }
  unsigned Delivered = 0;
  for (;;) {
    try {
      Pool.wait();
      break;
    } catch (const std::runtime_error &) {
      ++Delivered;
    }
  }
  EXPECT_EQ(Delivered, 20u);
  EXPECT_EQ(Ran.load(), 20u);
  EXPECT_EQ(Pool.pendingErrors(), 0u);
}

TEST(ThreadPoolTest, ShutdownUnderLoadCompletesAllTasks) {
  std::atomic<unsigned> Done{0};
  {
    ThreadPool Pool(4);
    // Many more tasks than workers; the destructor runs with queues full.
    for (unsigned I = 0; I != 2000; ++I)
      Pool.submit([&Done] { Done.fetch_add(1); });
    // No wait(): destruction must drain, not drop.
  }
  EXPECT_EQ(Done.load(), 2000u);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  std::atomic<unsigned> Done{0};
  {
    ThreadPool Pool(3);
    for (unsigned I = 0; I != 20; ++I)
      Pool.submit([&] {
        Done.fetch_add(1);
        Pool.submit([&] { Done.fetch_add(1); });
      });
    Pool.wait();
    EXPECT_EQ(Done.load(), 40u);
  }
}

TEST(ThreadPoolTest, OneSlowTaskDoesNotBlockTheRest) {
  ThreadPool Pool(4);
  std::mutex Mutex;
  std::condition_variable CV;
  bool Release = false;

  // Occupy one worker until explicitly released.
  auto Slow = Pool.async([&] {
    std::unique_lock<std::mutex> Lock(Mutex);
    CV.wait(Lock, [&] { return Release; });
    return 1;
  });
  // The short tasks must complete while the slow one still holds a worker —
  // they are distributed round-robin, so some land on the blocked worker's
  // queue and must be stolen by its siblings.
  std::vector<std::future<int>> Short;
  for (int I = 0; I != 64; ++I)
    Short.push_back(Pool.async([I] { return I; }));
  for (int I = 0; I != 64; ++I)
    EXPECT_EQ(Short[I].get(), I);

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Release = true;
  }
  CV.notify_all();
  EXPECT_EQ(Slow.get(), 1);
}

} // namespace
