//===- PassesTest.cpp - Optimization pass tests -------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each pass is tested two ways: structurally (did the expected rewrite
/// happen) and semantically (the transformed function must refine the
/// original under the proposed semantics, checked exhaustively by the
/// translation validator — the Section 6 methodology, with opt-fuzz replaced
/// by targeted inputs).
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"
#include "opt/Passes.h"

#include "analysis/ValueTracking.h"
#include "ir/Cloning.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "opt/Utils.h"
#include "tv/Refinement.h"

#include <gtest/gtest.h>

using namespace frost;
using frost::sem::SemanticsConfig;

namespace {

struct PassesTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "passes"};

  Function *parse(const std::string &Text, const std::string &Name) {
    ParseResult R = parseModule(Text, M);
    EXPECT_TRUE(R.Ok) << R.Error;
    Function *F = M.getFunction(Name);
    EXPECT_NE(F, nullptr);
    return F;
  }

  /// Clones F, runs the pass on F, verifies, and checks refinement of the
  /// transformed F against the untouched clone.
  ::testing::AssertionResult runAndValidate(
      Function *F, std::unique_ptr<Pass> P,
      SemanticsConfig Config = SemanticsConfig::proposed()) {
    Function *Orig = cloneFunction(*F, M, F->getName() + ".orig");
    P->runOnFunction(*F);
    std::vector<std::string> Errors;
    if (!verifyFunction(*F, &Errors))
      return ::testing::AssertionFailure()
             << "verifier: " << Errors.front() << "\n" << F->str();
    tv::TVResult R = tv::checkRefinement(*Orig, *F, Config);
    if (!R.valid())
      return ::testing::AssertionFailure()
             << "refinement: " << R.Message << "\ntransformed:\n" << F->str();
    return ::testing::AssertionSuccess();
  }

  /// Counts instructions with the given opcode.
  unsigned count(Function *F, Opcode Op) {
    unsigned N = 0;
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        N += I->getOpcode() == Op;
    return N;
  }
};

//===----------------------------------------------------------------------===//
// InstSimplify
//===----------------------------------------------------------------------===//

TEST_F(PassesTest, InstSimplifyConstantFolding) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  %a = add i8 3, 4
  %b = mul i8 %a, 2
  %c = add i8 %x, %b
  ret i8 %c
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createInstSimplifyPass()));
  // 3+4=7 and 7*2=14 fold; only the final add remains.
  EXPECT_EQ(F->instructionCount(), 2u);
}

TEST_F(PassesTest, InstSimplifyIdentities) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 0
  %b = mul i8 %a, 1
  %c = or i8 %b, 0
  %d = xor i8 %c, 0
  %e = and i8 %d, -1
  ret i8 %e
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createInstSimplifyPass()));
  EXPECT_EQ(F->instructionCount(), 1u); // Just the ret.
}

TEST_F(PassesTest, InstSimplifySelfCancellation) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  %a = sub i8 %x, %x
  %b = xor i8 %x, %x
  %c = add i8 %a, %b
  ret i8 %c
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createInstSimplifyPass()));
  EXPECT_EQ(F->instructionCount(), 1u);
}

TEST_F(PassesTest, InstSimplifyICmpIdentical) {
  Function *F = parse(R"(
define i1 @f(i8 %x) {
entry:
  %c = icmp ule i8 %x, %x
  ret i1 %c
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createInstSimplifyPass()));
  EXPECT_EQ(count(F, Opcode::ICmp), 0u);
}

TEST_F(PassesTest, InstSimplifySelect) {
  Function *F = parse(R"(
define i8 @f(i1 %c, i8 %x, i8 %y) {
entry:
  %a = select i1 true, i8 %x, i8 %y
  %b = select i1 %c, i8 %a, i8 %a
  ret i8 %b
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createInstSimplifyPass()));
  EXPECT_EQ(count(F, Opcode::Select), 0u);
}

TEST_F(PassesTest, InstSimplifyFreezeOfNonPoison) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  %f1 = freeze i8 %x
  %f2 = freeze i8 %f1
  %f3 = freeze i8 7
  %s = add i8 %f2, %f3
  ret i8 %s
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createInstSimplifyPass()));
  // %f2 and %f3 fold away; %f1 must stay (%x may be poison).
  EXPECT_EQ(count(F, Opcode::Freeze), 1u);
}

//===----------------------------------------------------------------------===//
// InstCombine
//===----------------------------------------------------------------------===//

TEST_F(PassesTest, InstCombineStrengthReduction) {
  Function *F = parse(R"(
define i8 @f(i8 %x, i8 %y) {
entry:
  %m = mul nsw i8 %x, 8
  %d = udiv i8 %y, 4
  %s = add i8 %m, %d
  ret i8 %s
}
)",
                      "f");
  ASSERT_TRUE(
      runAndValidate(F, createInstCombinePass(PipelineMode::Proposed)));
  EXPECT_EQ(count(F, Opcode::Mul), 0u);
  EXPECT_EQ(count(F, Opcode::UDiv), 0u);
  EXPECT_EQ(count(F, Opcode::Shl), 1u);
  EXPECT_EQ(count(F, Opcode::LShr), 1u);
}

TEST_F(PassesTest, InstCombineConstantChains) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 3
  %b = add i8 %a, 4
  %c = xor i8 %b, 5
  %d = xor i8 %c, 6
  ret i8 %d
}
)",
                      "f");
  ASSERT_TRUE(
      runAndValidate(F, createInstCombinePass(PipelineMode::Proposed)));
  EXPECT_EQ(count(F, Opcode::Add), 1u);
  EXPECT_EQ(count(F, Opcode::Xor), 1u);
}

TEST_F(PassesTest, InstCombineAddNSWCmpFold) {
  // The flagship fold: icmp sgt (add nsw a, b), a -> icmp sgt b, 0.
  Function *F = parse(R"(
define i1 @f(i4 %a, i4 %b) {
entry:
  %add = add nsw i4 %a, %b
  %cmp = icmp sgt i4 %add, %a
  ret i1 %cmp
}
)",
                      "f");
  ASSERT_TRUE(
      runAndValidate(F, createInstCombinePass(PipelineMode::Proposed)));
  // After DCE-able add remains but the cmp now compares %b against 0.
  bool Found = false;
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB)
      if (auto *C = dyn_cast<ICmpInst>(I))
        Found |= C->lhs() == F->arg(1) && frost::opt::matchConstant(C->rhs(), 0);
  EXPECT_TRUE(Found) << F->str();
}

TEST_F(PassesTest, InstCombineSelectToOrProposedInsertsFreeze) {
  Function *F = parse(R"(
define i1 @f(i1 %c, i1 %x) {
entry:
  %s = select i1 %c, i1 true, i1 %x
  ret i1 %s
}
)",
                      "f");
  ASSERT_TRUE(
      runAndValidate(F, createInstCombinePass(PipelineMode::Proposed)));
  EXPECT_EQ(count(F, Opcode::Select), 0u);
  EXPECT_EQ(count(F, Opcode::Or), 1u);
  EXPECT_EQ(count(F, Opcode::Freeze), 1u) << F->str();
}

TEST_F(PassesTest, InstCombineSelectToOrLegacyIsUnsound) {
  // The historical transformation without freeze: the validator must find
  // the Section 3.4 counterexample (c = true, x = poison).
  Function *F = parse(R"(
define i1 @f(i1 %c, i1 %x) {
entry:
  %s = select i1 %c, i1 true, i1 %x
  ret i1 %s
}
)",
                      "f");
  Function *Orig = cloneFunction(*F, M, "f.orig");
  createInstCombinePass(PipelineMode::Legacy)->runOnFunction(*F);
  EXPECT_EQ(count(F, Opcode::Freeze), 0u);
  tv::TVResult R =
      tv::checkRefinement(*Orig, *F, SemanticsConfig::proposed());
  EXPECT_TRUE(R.invalid()) << R.Message;
}

TEST_F(PassesTest, InstCombineCastChains) {
  Function *F = parse(R"(
define i32 @f(i8 %x) {
entry:
  %a = zext i8 %x to i16
  %b = zext i16 %a to i32
  ret i32 %b
}
)",
                      "f");
  ASSERT_TRUE(
      runAndValidate(F, createInstCombinePass(PipelineMode::Proposed)));
  EXPECT_EQ(count(F, Opcode::ZExt), 1u);
}

//===----------------------------------------------------------------------===//
// SimplifyCFG
//===----------------------------------------------------------------------===//

TEST_F(PassesTest, SimplifyCFGConstantBranch) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  br i1 true, label %live, label %dead

live:
  ret i8 %x

dead:
  ret i8 0
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createSimplifyCFGPass()));
  EXPECT_EQ(F->size(), 1u);
}

TEST_F(PassesTest, SimplifyCFGMergesStraightLine) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 1
  br label %next

next:
  %b = add i8 %a, 2
  br label %last

last:
  ret i8 %b
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createSimplifyCFGPass()));
  EXPECT_EQ(F->size(), 1u);
}

TEST_F(PassesTest, SimplifyCFGPhiToSelectDiamond) {
  Function *F = parse(R"(
define i8 @f(i1 %c, i8 %a, i8 %b) {
entry:
  br i1 %c, label %t, label %e

t:
  br label %m

e:
  br label %m

m:
  %p = phi i8 [ %a, %t ], [ %b, %e ]
  ret i8 %p
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createSimplifyCFGPass()));
  EXPECT_EQ(count(F, Opcode::Select), 1u);
  EXPECT_EQ(count(F, Opcode::Phi), 0u);
  EXPECT_EQ(F->size(), 1u) << F->str();
}

TEST_F(PassesTest, SimplifyCFGPhiToSelectTriangle) {
  Function *F = parse(R"(
define i8 @f(i1 %c, i8 %a) {
entry:
  br i1 %c, label %t, label %m

t:
  br label %m

m:
  %p = phi i8 [ 5, %t ], [ %a, %entry ]
  ret i8 %p
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createSimplifyCFGPass()));
  EXPECT_EQ(count(F, Opcode::Select), 1u);
}

TEST_F(PassesTest, SimplifyCFGRemovesUnreachable) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  ret i8 %x

island:
  %a = add i8 %x, 1
  br label %island2

island2:
  ret i8 %a
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createSimplifyCFGPass()));
  EXPECT_EQ(F->size(), 1u);
}

//===----------------------------------------------------------------------===//
// SCCP
//===----------------------------------------------------------------------===//

TEST_F(PassesTest, SCCPPropagatesThroughControlFlow) {
  Function *F = parse(R"(
define i8 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b

a:
  br label %m

b:
  br label %m

m:
  %p = phi i8 [ 3, %a ], [ 3, %b ]
  %q = add i8 %p, 4
  ret i8 %q
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createSCCPPass()));
  EXPECT_EQ(count(F, Opcode::Add), 0u) << F->str();
}

TEST_F(PassesTest, SCCPIgnoresDeadEdges) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  br i1 false, label %dead, label %live

dead:
  br label %m

live:
  br label %m

m:
  %p = phi i8 [ 9, %dead ], [ 4, %live ]
  ret i8 %p
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createSCCPPass()));
  // Only the live edge contributes: %p is the constant 4.
  EXPECT_EQ(count(F, Opcode::Phi), 0u) << F->str();
}

//===----------------------------------------------------------------------===//
// GVN
//===----------------------------------------------------------------------===//

TEST_F(PassesTest, GVNRemovesRedundantExpressions) {
  Function *F = parse(R"(
define i8 @f(i8 %x, i8 %y) {
entry:
  %a = add i8 %x, %y
  %b = add i8 %y, %x
  %c = sub i8 %a, %b
  ret i8 %c
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createGVNPass(PipelineMode::Proposed)));
  EXPECT_EQ(count(F, Opcode::Add), 1u) << F->str();
}

TEST_F(PassesTest, GVNDoesNotMergeFreezes) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  %f1 = freeze i8 %x
  %f2 = freeze i8 %x
  %d = sub i8 %f1, %f2
  ret i8 %d
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createGVNPass(PipelineMode::Proposed)));
  // Merging would change the result from "any difference" to always-0 —
  // wait, merging *shrinks* behaviours... but LLVM's rule (Section 6) is
  // that it is sound only if ALL uses are replaced; our GVN stays
  // conservative and keeps both.
  EXPECT_EQ(count(F, Opcode::Freeze), 2u);
}

TEST_F(PassesTest, GVNPropagatesBranchEqualities) {
  // The Section 3.3 GVN transformation.
  Function *F = parse(R"(
declare void @observe(i8)

define void @f(i8 %x, i8 %y) {
entry:
  %t = add nsw i8 %x, 1
  %c = icmp eq i8 %t, %y
  br i1 %c, label %then, label %exit

then:
  call void @observe(i8 %t)
  br label %exit

exit:
  ret void
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createGVNPass(PipelineMode::Proposed)));
  // Inside %then, %t was replaced by %y.
  bool UsesY = false;
  for (BasicBlock *BB : *F)
    if (BB->getName() == "then")
      for (Instruction *I : *BB)
        if (auto *C = dyn_cast<CallInst>(I))
          UsesY = C->getArg(0) == F->arg(1);
  EXPECT_TRUE(UsesY) << F->str();
}

//===----------------------------------------------------------------------===//
// DCE
//===----------------------------------------------------------------------===//

TEST_F(PassesTest, DCERemovesDeadChains) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  %d1 = add i8 %x, 1
  %d2 = mul i8 %d1, %d1
  %d3 = freeze i8 %d2
  ret i8 %x
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createDCEPass()));
  EXPECT_EQ(F->instructionCount(), 1u);
}

TEST_F(PassesTest, DCEKeepsSideEffects) {
  Function *F = parse(R"(
@g = global i8, 1

define void @f(i8 %x) {
entry:
  store i8 %x, i8* @g
  %dead = udiv i8 1, %x
  ret void
}
)",
                      "f");
  createDCEPass()->runOnFunction(*F);
  // The store stays; the division stays too (it can trap: removing it would
  // actually be sound — removing UB is refinement — but DCE is conservative
  // about immediate-UB ops, matching LLVM).
  EXPECT_EQ(count(F, Opcode::Store), 1u);
  EXPECT_EQ(count(F, Opcode::UDiv), 1u);
}

//===----------------------------------------------------------------------===//
// LICM (Figure 1)
//===----------------------------------------------------------------------===//

TEST_F(PassesTest, LICMHoistsInvariantNSWAdd) {
  // Figure 1: hoisting x+1 (nsw) out of the loop is exactly what deferred
  // UB exists for.
  Function *F = parse(R"(
@a = global i8, 4

define void @f(i2 %n, i8 %x) {
entry:
  br label %head

head:
  %i = phi i2 [ 0, %entry ], [ %i1, %body ]
  %c = icmp ult i2 %i, %n
  br i1 %c, label %body, label %exit

body:
  %x1 = add nsw i8 %x, 1
  %iw = zext i2 %i to i32
  %ptr = gep i8* @a, i32 %iw
  store i8 %x1, i8* %ptr
  %i1 = add i2 %i, 1
  br label %head

exit:
  ret void
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createLICMPass(PipelineMode::Proposed)));
  // %x1 now lives in the entry block (the preheader).
  bool Hoisted = false;
  for (Instruction *I : *F->entry())
    Hoisted |= I->getOpcode() == Opcode::Add && I->hasNSW();
  EXPECT_TRUE(Hoisted) << F->str();
}

TEST_F(PassesTest, LICMNeverHoistsDivision) {
  // Section 3.2 / PR21412: division must not move past control flow.
  Function *F = parse(R"(
declare void @observe(i8)

define void @f(i2 %n, i8 %k) {
entry:
  %nz = icmp ne i8 %k, 0
  br i1 %nz, label %guard, label %exit

guard:
  br label %head

head:
  %i = phi i2 [ 0, %guard ], [ %i1, %body ]
  %c = icmp ult i2 %i, %n
  br i1 %c, label %body, label %exit

body:
  %q = udiv i8 1, %k
  call void @observe(i8 %q)
  %i1 = add i2 %i, 1
  br label %head

exit:
  ret void
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createLICMPass(PipelineMode::Proposed)));
  // The division stays in the loop body.
  bool DivInBody = false;
  for (BasicBlock *BB : *F)
    if (BB->getName() == "body")
      for (Instruction *I : *BB)
        DivInBody |= I->getOpcode() == Opcode::UDiv;
  EXPECT_TRUE(DivInBody) << F->str();
}

//===----------------------------------------------------------------------===//
// Loop unswitching (Sections 3.3 / 5.1)
//===----------------------------------------------------------------------===//

const char *UnswitchSource = R"(
declare void @observe(i8)

define void @f(i2 %n, i1 %c2) {
entry:
  br label %head

head:
  %i = phi i2 [ 0, %entry ], [ %i1, %latch ]
  %c = icmp ult i2 %i, %n
  br i1 %c, label %body, label %exit

body:
  br i1 %c2, label %foo, label %bar

foo:
  call void @observe(i8 1)
  br label %latch

bar:
  call void @observe(i8 2)
  br label %latch

latch:
  %i1 = add i2 %i, 1
  br label %head

exit:
  ret void
}
)";

TEST_F(PassesTest, LoopUnswitchProposedFreezesCondition) {
  Function *F = parse(UnswitchSource, "f");
  ASSERT_TRUE(
      runAndValidate(F, createLoopUnswitchPass(PipelineMode::Proposed)));
  EXPECT_EQ(count(F, Opcode::Freeze), 1u) << F->str();
  // Two loop copies now exist: two phis.
  EXPECT_EQ(count(F, Opcode::Phi), 2u);
  // Each copy still carries both (now partly unreachable) arms until
  // SimplifyCFG prunes them down to one observe call per copy.
  EXPECT_EQ(count(F, Opcode::Call), 4u);
  createSimplifyCFGPass()->runOnFunction(*F);
  EXPECT_EQ(count(F, Opcode::Call), 2u) << F->str();
}

TEST_F(PassesTest, LoopUnswitchLegacyIsUnsoundUnderProposedSemantics) {
  // The paper's end-to-end miscompilation: legacy unswitching (no freeze)
  // branches on a potentially poison value that the original program never
  // branched on when the loop is empty.
  Function *F = parse(UnswitchSource, "f");
  Function *Orig = cloneFunction(*F, M, "f.orig");
  createLoopUnswitchPass(PipelineMode::Legacy)->runOnFunction(*F);
  EXPECT_EQ(count(F, Opcode::Freeze), 0u);
  ASSERT_TRUE(verifyFunction(*F));

  tv::TVResult R =
      tv::checkRefinement(*Orig, *F, SemanticsConfig::proposed());
  EXPECT_TRUE(R.invalid()) << R.Message;

  // ...but it validates under the nondet-branch semantics loop unswitching
  // had assumed (Section 3.3). A poison trip count would make the nondet
  // branch diverge (unboundedly many behaviours), so this check runs on
  // concrete and undef inputs — undef c2 is the historically interesting
  // case anyway.
  tv::TVOptions NoPoison;
  NoPoison.IncludePoisonInputs = false;
  R = tv::checkRefinement(*Orig, *F, SemanticsConfig::legacyUnswitch(),
                          NoPoison);
  EXPECT_TRUE(R.valid()) << R.Message;
}

//===----------------------------------------------------------------------===//
// Induction variable widening (Figure 3)
//===----------------------------------------------------------------------===//

TEST_F(PassesTest, IndVarWidenEliminatesSext) {
  Function *F = parse(R"(
define i8 @f(i3 %n) {
entry:
  br label %head

head:
  %i = phi i3 [ 0, %entry ], [ %i1, %body ]
  %s = phi i8 [ 0, %entry ], [ %s1, %body ]
  %c = icmp slt i3 %i, %n
  br i1 %c, label %body, label %exit

body:
  %iext = sext i3 %i to i8
  %s1 = add i8 %s, %iext
  %i1 = add nsw i3 %i, 1
  br label %head

exit:
  ret i8 %s
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createIndVarWidenPass(/*TargetWidth=*/8)));
  EXPECT_EQ(count(F, Opcode::SExt), 0u) << F->str();
  // A wide induction phi now exists alongside the narrow one.
  EXPECT_EQ(count(F, Opcode::Phi), 3u);
}

TEST_F(PassesTest, IndVarWidenRequiresNSW) {
  // Section 2.4: without nsw (wrapping step) widening is not performed.
  Function *F = parse(R"(
define i8 @f(i3 %n) {
entry:
  br label %head

head:
  %i = phi i3 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i3 %i, %n
  br i1 %c, label %body, label %exit

body:
  %iext = sext i3 %i to i8
  %i1 = add i3 %i, 1
  br label %head

exit:
  ret i8 0
}
)",
                      "f");
  createIndVarWidenPass(8)->runOnFunction(*F);
  EXPECT_EQ(count(F, Opcode::SExt), 1u);
}

//===----------------------------------------------------------------------===//
// Reassociate (Section 10.2)
//===----------------------------------------------------------------------===//

TEST_F(PassesTest, ReassociateCombinesConstants) {
  Function *F = parse(R"(
define i8 @f(i8 %x, i8 %y) {
entry:
  %a = add i8 %x, 3
  %b = add i8 %a, %y
  %c = add i8 %b, 4
  ret i8 %c
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createReassociatePass()));
  // The tree is rebuilt with 3+4 combined into a single constant 7.
  bool HasSeven = false;
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB)
      for (unsigned Op = 0; Op != I->getNumOperands(); ++Op)
        HasSeven |= frost::opt::matchConstant(I->getOperand(Op), 7);
  EXPECT_TRUE(HasSeven) << F->str();
}

TEST_F(PassesTest, ReassociateDropsNSW) {
  Function *F = parse(R"(
define i8 @f(i8 %x, i8 %y, i8 %z) {
entry:
  %a = add nsw i8 %z, %y
  %b = add nsw i8 %a, %x
  ret i8 %b
}
)",
                      "f");
  ASSERT_TRUE(runAndValidate(F, createReassociatePass()));
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB) {
      if (I->getOpcode() == Opcode::Add) {
        EXPECT_FALSE(I->hasNSW()) << F->str();
      }
    }
}

//===----------------------------------------------------------------------===//
// CodeGenPrepare (Section 6)
//===----------------------------------------------------------------------===//

TEST_F(PassesTest, CGPPushesFreezeThroughICmp) {
  Function *F = parse(R"(
define i1 @f(i8 %x) {
entry:
  %c = icmp ult i8 %x, 10
  %fc = freeze i1 %c
  ret i1 %fc
}
)",
                      "f");
  ASSERT_TRUE(
      runAndValidate(F, createCodeGenPreparePass(PipelineMode::Proposed)));
  // The freeze now guards the operand, not the compare result.
  auto *Ret = cast<ReturnInst>(F->entry()->terminator());
  EXPECT_TRUE(isa<ICmpInst>(Ret->value())) << F->str();
  EXPECT_EQ(count(F, Opcode::Freeze), 1u);
}

TEST_F(PassesTest, CGPSplitsBranchOnAnd) {
  Function *F = parse(R"(
define i8 @f(i1 %a, i1 %b) {
entry:
  %c = and i1 %a, %b
  br i1 %c, label %t, label %e

t:
  ret i8 1

e:
  ret i8 2
}
)",
                      "f");
  ASSERT_TRUE(
      runAndValidate(F, createCodeGenPreparePass(PipelineMode::Proposed)));
  EXPECT_EQ(count(F, Opcode::And), 0u);
  EXPECT_EQ(F->size(), 4u) << F->str(); // entry, check2, t, e.
}

TEST_F(PassesTest, CGPSplitsFrozenAndViaDistribution) {
  // Section 6: the branch-split was blocked on freeze(and ...); the fix
  // distributes the freeze first.
  Function *F = parse(R"(
define i8 @f(i1 %a, i1 %b) {
entry:
  %c = and i1 %a, %b
  %fc = freeze i1 %c
  br i1 %fc, label %t, label %e

t:
  ret i8 1

e:
  ret i8 2
}
)",
                      "f");
  ASSERT_TRUE(
      runAndValidate(F, createCodeGenPreparePass(PipelineMode::Proposed)));
  EXPECT_EQ(F->size(), 4u) << F->str();
  EXPECT_EQ(count(F, Opcode::Freeze), 2u) << F->str();
}

//===----------------------------------------------------------------------===//
// Full pipeline
//===----------------------------------------------------------------------===//

TEST_F(PassesTest, StandardPipelineIsARefinement) {
  Function *F = parse(R"(
declare void @observe(i8)

define i8 @f(i2 %n, i8 %x, i1 %c2) {
entry:
  br label %head

head:
  %i = phi i2 [ 0, %entry ], [ %i1, %latch ]
  %acc = phi i8 [ 0, %entry ], [ %acc1, %latch ]
  %c = icmp ult i2 %i, %n
  br i1 %c, label %body, label %exit

body:
  %inv = add nsw i8 %x, 1
  br i1 %c2, label %foo, label %bar

foo:
  br label %latch

bar:
  br label %latch

latch:
  %sel = phi i8 [ %inv, %foo ], [ 0, %bar ]
  %acc1 = add i8 %acc, %sel
  %i1 = add i2 %i, 1
  br label %head

exit:
  %r = mul i8 %acc, 2
  ret i8 %r
}
)",
                      "f");
  Function *Orig = cloneFunction(*F, M, "f.orig");
  PassManager PM(/*VerifyAfterEachPass=*/true);
  buildStandardPipeline(PM, PipelineMode::Proposed);
  PM.run(*F);
  ASSERT_TRUE(verifyFunction(*F));
  tv::TVResult R =
      tv::checkRefinement(*Orig, *F, SemanticsConfig::proposed());
  EXPECT_TRUE(R.valid()) << R.Message << "\n" << F->str();
}

TEST_F(PassesTest, PipelineChangeCountsAreRecorded) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 0
  %b = mul i8 %a, 4
  ret i8 %b
}
)",
                      "f");
  PassManager PM;
  buildStandardPipeline(PM, PipelineMode::Proposed);
  EXPECT_TRUE(PM.run(*F));
  bool AnyChange = false;
  for (auto &[Name, N] : PM.changeCounts())
    AnyChange |= N > 0;
  EXPECT_TRUE(AnyChange);
}

//===----------------------------------------------------------------------===//
// Value tracking (Section 5.6)
//===----------------------------------------------------------------------===//

TEST_F(PassesTest, PowerOfTwoAnalysisIsUpToPoison) {
  Function *F = parse(R"(
define i8 @f(i8 %y) {
entry:
  %x = shl i8 1, %y
  %fz = freeze i8 %x
  ret i8 %x
}
)",
                      "f");
  Instruction *Shl = F->entry()->front();
  Instruction *Fz = Shl->nextInst();
  // "shl 1, %y" is a power of two up to poison...
  EXPECT_TRUE(isKnownToBeAPowerOfTwo(Shl));
  // ...but not after freezing: the materialised value is arbitrary.
  EXPECT_FALSE(isKnownToBeAPowerOfTwo(Fz));
  // And the shl itself may be poison, so hoisting a division guarded by
  // this fact would be wrong (Section 5.6).
  EXPECT_FALSE(isGuaranteedNotToBePoison(Shl));
  EXPECT_TRUE(isGuaranteedNotToBePoison(Fz));
}

TEST_F(PassesTest, KnownBitsBasics) {
  Function *F = parse(R"(
define i8 @f(i8 %x) {
entry:
  %a = and i8 %x, 15
  %b = or i8 %a, 128
  %c = shl i8 %b, 1
  ret i8 %c
}
)",
                      "f");
  auto It = F->entry()->begin();
  Instruction *And = *It++;
  Instruction *Or = *It++;
  Instruction *Shl = *It++;
  EXPECT_EQ(computeKnownBits(And).Zeros.zext(), 0xF0u);
  EXPECT_EQ(computeKnownBits(Or).Ones.zext(), 0x80u);
  EXPECT_EQ(computeKnownBits(Or).Zeros.zext(), 0x70u);
  // After shl 1 the top bit is discarded; low bit known zero.
  EXPECT_TRUE(computeKnownBits(Shl).Zeros.getBit(0));
}

} // namespace
