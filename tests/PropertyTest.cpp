//===- PropertyTest.cpp - Parameterized property sweeps -------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style sweeps over seeds, widths, and opcodes:
///  - end-to-end: optimizer and backend preserve concrete results of random
///    terminating programs;
///  - freeze laws: identity on concrete values, refinement in general, and
///    idempotence — for every small width;
///  - the shared fold evaluator agrees with direct BitVec arithmetic on
///    every operand pair of every binary opcode.
///
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "codegen/MachineSim.h"
#include "fuzz/RandomProgram.h"
#include "ir/Cloning.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "opt/Pass.h"
#include "sem/Eval.h"
#include "sem/Interp.h"
#include "tv/Refinement.h"

#include <gtest/gtest.h>

#include <optional>

using namespace frost;
using frost::sem::SemanticsConfig;

namespace {

//===----------------------------------------------------------------------===//
// Property: for every seed, the full pipeline (both modes) and the backend
// preserve the concrete result of a random terminating program.
//===----------------------------------------------------------------------===//

class PipelinePreservesSemantics : public ::testing::TestWithParam<int> {};

TEST_P(PipelinePreservesSemantics, OnRandomPrograms) {
  IRContext Ctx;
  Module M(Ctx, "prop");
  fuzz::RandomProgramOptions Opts;
  Opts.Seed = static_cast<uint64_t>(GetParam()) * 7727 + 3;
  Opts.WithBitFieldOps = GetParam() % 2 == 0;
  Function *F = fuzz::generateRandomFunction(M, "p", Opts);
  ASSERT_TRUE(verifyFunction(*F));

  const std::vector<std::pair<uint64_t, uint64_t>> Inputs = {
      {0, 0}, {1, 2}, {0xFFFFFFFF, 7}, {12345, 54321}};

  // Reference results. A random program is UB-free but may still *return*
  // poison (e.g. a wrapping nsw add): any concrete result refines that, so
  // such inputs only get a "runs successfully" check downstream.
  auto Reference = [&](Function &Fn,
                       std::pair<uint64_t, uint64_t> In)
      -> std::optional<uint64_t> {
    sem::DeterministicOracle O;
    sem::InterpOptions IOpts;
    IOpts.Fuel = 10u * 1000u * 1000u;
    sem::Interpreter Interp(sem::SemanticsConfig::proposed(), O, IOpts);
    sem::ExecResult R = Interp.run(
        Fn, {sem::Value::concrete(BitVec(32, In.first)),
             sem::Value::concrete(BitVec(32, In.second))});
    EXPECT_TRUE(R.ok()) << R.str();
    if (!R.ok() || !R.Ret->scalar().isConcrete())
      return std::nullopt;
    return R.Ret->scalar().Bits.zext();
  };

  std::vector<std::optional<uint64_t>> Expected;
  for (auto &In : Inputs)
    Expected.push_back(Reference(*F, In));

  for (PipelineMode Mode : {PipelineMode::Legacy, PipelineMode::Proposed}) {
    Function *C = cloneFunction(
        *F, M, Mode == PipelineMode::Legacy ? "pl" : "pp");
    PassManager PM(/*VerifyAfterEachPass=*/true);
    buildStandardPipeline(PM, Mode);
    PM.run(*C);
    for (unsigned I = 0; I != Inputs.size(); ++I) {
      if (!Expected[I])
        continue; // Poison reference: anything refines it.
      std::optional<uint64_t> Opt = Reference(*C, Inputs[I]);
      // A concrete reference must stay concrete (a pass may drop poison,
      // never introduce it).
      ASSERT_TRUE(Opt.has_value());
      EXPECT_EQ(*Opt, *Expected[I])
          << "mode " << (Mode == PipelineMode::Legacy ? "legacy" : "frost")
          << " input " << I;
    }
    // And through the backend on the simulator.
    codegen::CompiledFunction CF = codegen::compileFunction(*C);
    for (unsigned I = 0; I != Inputs.size(); ++I) {
      codegen::SimResult S = codegen::simulate(
          CF, {static_cast<uint32_t>(Inputs[I].first),
               static_cast<uint32_t>(Inputs[I].second)});
      ASSERT_TRUE(S.Ok) << S.Error;
      if (Expected[I]) {
        EXPECT_EQ(S.ReturnValue, static_cast<uint32_t>(*Expected[I]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePreservesSemantics,
                         ::testing::Range(1, 21));

//===----------------------------------------------------------------------===//
// Property: freeze laws at every small width.
//===----------------------------------------------------------------------===//

class FreezeLaws : public ::testing::TestWithParam<unsigned> {};

TEST_P(FreezeLaws, IdentityRefinementIdempotence) {
  unsigned W = GetParam();
  IRContext Ctx;
  Module M(Ctx, "fr");
  auto *Ty = Ctx.intTy(W);
  SemanticsConfig Proposed = SemanticsConfig::proposed();

  Function *Id = M.createFunction("id", Ctx.types().fnTy(Ty, {Ty}));
  {
    IRBuilder B(Ctx, Id->addBlock("entry"));
    B.ret(Id->arg(0));
  }
  Function *Fr = M.createFunction("fr", Ctx.types().fnTy(Ty, {Ty}));
  {
    IRBuilder B(Ctx, Fr->addBlock("entry"));
    B.ret(B.freeze(Fr->arg(0)));
  }
  Function *FrFr = M.createFunction("frfr", Ctx.types().fnTy(Ty, {Ty}));
  {
    IRBuilder B(Ctx, FrFr->addBlock("entry"));
    B.ret(B.freeze(B.freeze(FrFr->arg(0))));
  }

  // x -> freeze x is a refinement; the converse is not.
  EXPECT_TRUE(tv::checkRefinement(*Id, *Fr, Proposed).valid());
  EXPECT_TRUE(tv::checkRefinement(*Fr, *Id, Proposed).invalid());
  // freeze(freeze x) <-> freeze x, both directions.
  EXPECT_TRUE(tv::checkRefinement(*Fr, *FrFr, Proposed).valid());
  EXPECT_TRUE(tv::checkRefinement(*FrFr, *Fr, Proposed).valid());

  // Identity on every concrete value of the width.
  for (uint64_t V = 0; V != (uint64_t(1) << W); ++V)
    EXPECT_EQ(sem::runConcrete(*Fr, {V}), V);
}

INSTANTIATE_TEST_SUITE_P(Widths, FreezeLaws, ::testing::Values(1u, 2u, 3u,
                                                               4u, 5u));

//===----------------------------------------------------------------------===//
// Property: the shared fold evaluator (used by interpreter AND optimizer)
// agrees with direct two's-complement arithmetic for every i3 operand pair
// of every binary opcode.
//===----------------------------------------------------------------------===//

class FoldAgreesWithArithmetic
    : public ::testing::TestWithParam<Opcode> {};

TEST_P(FoldAgreesWithArithmetic, ExhaustiveI3) {
  Opcode Op = GetParam();
  SemanticsConfig Config = SemanticsConfig::proposed();
  const unsigned W = 3;
  for (uint64_t A = 0; A != 8; ++A) {
    for (uint64_t B = 0; B != 8; ++B) {
      BitVec VA(W, A), VB(W, B);
      sem::FoldResult R = sem::foldBinLane(
          Op, ArithFlags{}, sem::Lane::concrete(VA), sem::Lane::concrete(VB),
          Config);

      bool DivByZero = (Op == Opcode::UDiv || Op == Opcode::SDiv ||
                        Op == Opcode::URem || Op == Opcode::SRem) &&
                       VB.isZero();
      bool SDivOvf = (Op == Opcode::SDiv || Op == Opcode::SRem) &&
                     VA.isMinSigned() && VB.isAllOnes();
      bool OverShift = (Op == Opcode::Shl || Op == Opcode::LShr ||
                        Op == Opcode::AShr) &&
                       VB.zext() >= W;
      if (DivByZero || SDivOvf) {
        EXPECT_TRUE(R.UB) << opcodeName(Op) << " " << A << "," << B;
        continue;
      }
      if (OverShift) {
        EXPECT_TRUE(R.L.isPoison());
        continue;
      }
      ASSERT_FALSE(R.UB);
      ASSERT_TRUE(R.L.isConcrete());

      int64_t SA = VA.sext(), SB = VB.sext();
      uint64_t UA = A, UB = B;
      uint64_t Want = 0;
      switch (Op) {
      case Opcode::Add:
        Want = UA + UB;
        break;
      case Opcode::Sub:
        Want = UA - UB;
        break;
      case Opcode::Mul:
        Want = UA * UB;
        break;
      case Opcode::UDiv:
        Want = UA / UB;
        break;
      case Opcode::SDiv:
        Want = static_cast<uint64_t>(SA / SB);
        break;
      case Opcode::URem:
        Want = UA % UB;
        break;
      case Opcode::SRem:
        Want = static_cast<uint64_t>(SA % SB);
        break;
      case Opcode::Shl:
        Want = UA << UB;
        break;
      case Opcode::LShr:
        Want = UA >> UB;
        break;
      case Opcode::AShr:
        Want = static_cast<uint64_t>(SA >> UB);
        break;
      case Opcode::And:
        Want = UA & UB;
        break;
      case Opcode::Or:
        Want = UA | UB;
        break;
      case Opcode::Xor:
        Want = UA ^ UB;
        break;
      default:
        FAIL() << "unexpected opcode";
      }
      EXPECT_EQ(R.L.Bits.zext(), Want & 0x7u)
          << opcodeName(Op) << " " << A << "," << B;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBinOps, FoldAgreesWithArithmetic,
    ::testing::Values(Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::UDiv,
                      Opcode::SDiv, Opcode::URem, Opcode::SRem, Opcode::Shl,
                      Opcode::LShr, Opcode::AShr, Opcode::And, Opcode::Or,
                      Opcode::Xor));

//===----------------------------------------------------------------------===//
// Property: poison propagates through every binary opcode (Figure 5's
// "all operations over poison unconditionally return poison", with the
// divisor-UB exception).
//===----------------------------------------------------------------------===//

class PoisonPropagation : public ::testing::TestWithParam<Opcode> {};

TEST_P(PoisonPropagation, PoisonInPoisonOut) {
  Opcode Op = GetParam();
  SemanticsConfig Config = SemanticsConfig::proposed();
  sem::Lane P = sem::Lane::poison();
  sem::Lane C = sem::Lane::concrete(BitVec(3, 2));

  sem::FoldResult LHS = sem::foldBinLane(Op, {}, P, C, Config);
  EXPECT_TRUE(LHS.UB || LHS.L.isPoison());

  sem::FoldResult RHS = sem::foldBinLane(Op, {}, C, P, Config);
  if (Op == Opcode::UDiv || Op == Opcode::SDiv || Op == Opcode::URem ||
      Op == Opcode::SRem) {
    // Poison divisor is immediate UB (it could be zero).
    EXPECT_TRUE(RHS.UB);
  } else {
    EXPECT_TRUE(RHS.L.isPoison());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBinOps, PoisonPropagation,
    ::testing::Values(Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::UDiv,
                      Opcode::SDiv, Opcode::URem, Opcode::SRem, Opcode::Shl,
                      Opcode::LShr, Opcode::AShr, Opcode::And, Opcode::Or,
                      Opcode::Xor));

} // namespace
