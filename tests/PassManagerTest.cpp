//===- PassManagerTest.cpp - Analysis cache & pipeline parser tests ------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the analysis-cached pass manager's contract: cached results are
/// reused across CFG-preserving passes, invalidated (with dependency
/// cascade) when a pass edits the CFG, and PreservedAnalyses::all() is a
/// true no-op for the cache. Also pins the textual pipeline language:
/// parse/print round-trips and unknown names are rejected with a diagnostic
/// listing the valid ones.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "opt/Passes.h"
#include "opt/Pipeline.h"
#include "parser/Parser.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace frost;

namespace {

struct PassManagerTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "pm"};

  Function *parse(const std::string &Text, const std::string &Name) {
    ParseResult R = parseModule(Text, M);
    EXPECT_TRUE(R.Ok) << R.Error;
    Function *F = M.getFunction(Name);
    EXPECT_NE(F, nullptr);
    return F;
  }

  /// A single natural loop; every analysis has something to say about it.
  Function *parseLoop(const std::string &Name = "loop") {
    return parse("define i8 @" + Name + R"((i8 %n) {
entry:
  br label %header
header:
  %i = phi i8 [ 0, %entry ], [ %i.next, %body ]
  %cmp = icmp ult i8 %i, %n
  br i1 %cmp, label %body, label %exit
body:
  %i.next = add nsw i8 %i, 1
  br label %header
exit:
  ret i8 %i
}
)",
                 Name);
  }
};

/// A test-only pass: runs a callback, reports what it claims to preserve.
class LambdaPass : public Pass {
public:
  using Body = std::function<PreservedAnalyses(Function &, AnalysisManager &)>;
  LambdaPass(const char *Name, Body Fn) : Name(Name), Fn(std::move(Fn)) {}
  const char *name() const override { return Name; }
  PreservedAnalyses run(Function &F, AnalysisManager &AM) override {
    return Fn(F, AM);
  }

private:
  const char *Name;
  Body Fn;
};

//===----------------------------------------------------------------------===//
// Caching
//===----------------------------------------------------------------------===//

TEST_F(PassManagerTest, SecondRequestIsACacheHit) {
  Function *F = parseLoop();
  AnalysisManager AM;
  uint64_t Misses0 = stats::get("am.domtree.misses");
  uint64_t Hits0 = stats::get("am.domtree.hits");

  DominatorTree &DT1 = AM.get<DominatorTreeAnalysis>(*F);
  DominatorTree &DT2 = AM.get<DominatorTreeAnalysis>(*F);

  EXPECT_EQ(&DT1, &DT2); // Same cached object, not a rebuild.
  EXPECT_EQ(stats::get("am.domtree.misses"), Misses0 + 1);
  EXPECT_EQ(stats::get("am.domtree.hits"), Hits0 + 1);
}

TEST_F(PassManagerTest, CacheSurvivesCFGPreservingPipeline) {
  // gvn,licm over an unchanged CFG: the dominator tree is built once and
  // both passes (plus LoopInfo's construction) reuse it.
  Function *F = parseLoop();
  PassManager PM(/*VerifyAfterEachPass=*/false);
  std::string Error;
  ASSERT_TRUE(parsePassPipeline(PM, "gvn,licm", PipelineMode::Proposed,
                                &Error))
      << Error;

  uint64_t Built0 = stats::get("analysis.domtree.constructed");
  AnalysisManager AM;
  PM.run(*F, AM);
  EXPECT_EQ(stats::get("analysis.domtree.constructed"), Built0 + 1);
  EXPECT_TRUE(AM.isCached<DominatorTreeAnalysis>(*F));
}

TEST_F(PassManagerTest, PreservedAllLeavesCacheIntact) {
  Function *F = parseLoop();
  AnalysisManager AM;
  AM.get<DominatorTreeAnalysis>(*F);
  AM.get<LoopInfoAnalysis>(*F);
  size_t Cached = AM.cachedResultCount();

  PassManager PM(/*VerifyAfterEachPass=*/false);
  PM.add(std::make_unique<LambdaPass>(
      "noop", [](Function &, AnalysisManager &) {
        return PreservedAnalyses::all();
      }));
  EXPECT_FALSE(PM.run(*F, AM)); // all() <=> nothing changed.
  EXPECT_EQ(AM.cachedResultCount(), Cached);
  EXPECT_TRUE(AM.isCached<DominatorTreeAnalysis>(*F));
  EXPECT_TRUE(AM.isCached<LoopInfoAnalysis>(*F));
}

TEST_F(PassManagerTest, SimplifyCFGEditInvalidatesAnalyses) {
  // A constant branch SimplifyCFG will fold, changing the CFG.
  Function *F = parse(R"(
define i8 @g(i8 %x) {
entry:
  br i1 true, label %a, label %b
a:
  ret i8 %x
b:
  ret i8 0
}
)",
                      "g");
  AnalysisManager AM;
  AM.get<DominatorTreeAnalysis>(*F);
  AM.get<LoopInfoAnalysis>(*F);
  uint64_t Inv0 = stats::get("am.domtree.invalidated");

  PassManager PM(/*VerifyAfterEachPass=*/false);
  PM.add(createSimplifyCFGPass());
  EXPECT_TRUE(PM.run(*F, AM));

  EXPECT_FALSE(AM.isCached<DominatorTreeAnalysis>(*F));
  EXPECT_FALSE(AM.isCached<LoopInfoAnalysis>(*F));
  EXPECT_EQ(stats::get("am.domtree.invalidated"), Inv0 + 1);
}

TEST_F(PassManagerTest, DependencyCascadeEvictsDependents) {
  // A pass claiming to preserve ScalarEvolution but not LoopInfo still
  // evicts ScalarEvolution: the cached SCEV holds a reference into the
  // cached LoopInfo and must not outlive it.
  Function *F = parseLoop();
  AnalysisManager AM;
  AM.get<ScalarEvolutionAnalysis>(*F); // Pulls in DT and LI too.
  ASSERT_TRUE(AM.isCached<LoopInfoAnalysis>(*F));
  ASSERT_TRUE(AM.isCached<ScalarEvolutionAnalysis>(*F));

  PreservedAnalyses PA = PreservedAnalyses::none();
  PA.preserve<ScalarEvolutionAnalysis>();
  AM.invalidate(*F, PA);

  EXPECT_FALSE(AM.isCached<LoopInfoAnalysis>(*F));
  EXPECT_FALSE(AM.isCached<ScalarEvolutionAnalysis>(*F));
}

TEST_F(PassManagerTest, PreservedAnalysesSetSemantics) {
  EXPECT_TRUE(PreservedAnalyses::all().areAllPreserved());
  EXPECT_FALSE(PreservedAnalyses::none().areAllPreserved());
  EXPECT_TRUE(
      PreservedAnalyses::all().preserved(DominatorTreeAnalysis::key()));
  EXPECT_FALSE(
      PreservedAnalyses::none().preserved(DominatorTreeAnalysis::key()));

  PreservedAnalyses PA = PreservedAnalyses::none();
  PA.preserve<DominatorTreeAnalysis>();
  EXPECT_TRUE(PA.preserved(DominatorTreeAnalysis::key()));
  EXPECT_FALSE(PA.preserved(LoopInfoAnalysis::key()));

  PreservedAnalyses Both = PreservedAnalyses::all();
  Both.intersect(PA);
  EXPECT_FALSE(Both.areAllPreserved());
  EXPECT_TRUE(Both.preserved(DominatorTreeAnalysis::key()));
  EXPECT_FALSE(Both.preserved(LoopInfoAnalysis::key()));
}

//===----------------------------------------------------------------------===//
// Change accounting
//===----------------------------------------------------------------------===//

TEST_F(PassManagerTest, ChangeCountsAreRestartedPerRun) {
  // First run removes the dead add; the second has nothing left to do. A
  // reused manager must report 0 changes for the second run, not an
  // accumulated total.
  Function *F = parse(R"(
define i8 @h(i8 %x) {
entry:
  %dead = add i8 %x, 1
  ret i8 %x
}
)",
                      "h");
  PassManager PM(/*VerifyAfterEachPass=*/false);
  PM.add(createDCEPass());

  EXPECT_TRUE(PM.run(*F));
  ASSERT_EQ(PM.changeCounts().size(), 1u);
  EXPECT_EQ(PM.changeCounts()[0].first, "dce");
  EXPECT_EQ(PM.changeCounts()[0].second, 1u);

  EXPECT_FALSE(PM.run(*F));
  ASSERT_EQ(PM.changeCounts().size(), 1u);
  EXPECT_EQ(PM.changeCounts()[0].second, 0u);
}

TEST_F(PassManagerTest, InstrumentationSeesEveryExecution) {
  Function *F = parseLoop();
  PassManager PM(/*VerifyAfterEachPass=*/false);
  PM.add(createDCEPass());
  PM.add(createGVNPass(PipelineMode::Proposed));

  std::vector<std::string> Before, After;
  PM.instrumentation().onBeforePass(
      [&](const Pass &P, const Function &) { Before.push_back(P.name()); });
  PM.instrumentation().onAfterPass(
      [&](const Pass &P, const Function &,
          const PassInstrumentation::AfterPassInfo &Info) {
        After.push_back(P.name());
        EXPECT_GE(Info.Seconds, 0.0);
      });

  PM.run(*F);
  EXPECT_EQ(Before, (std::vector<std::string>{"dce", "gvn"}));
  EXPECT_EQ(After, Before);
}

//===----------------------------------------------------------------------===//
// Pipeline parser
//===----------------------------------------------------------------------===//

TEST_F(PassManagerTest, PipelineParsePrintRoundTrip) {
  PassManager PM(/*VerifyAfterEachPass=*/false);
  std::string Error;
  ASSERT_TRUE(parsePassPipeline(
      PM, "instcombine<legacy>,gvn,licm,verify", PipelineMode::Proposed,
      &Error))
      << Error;
  // gvn/licm are mode-dependent: the canonical text pins the default mode
  // they were instantiated with.
  EXPECT_EQ(PM.pipelineText(),
            "instcombine<legacy>,gvn<proposed>,licm<proposed>,verify");

  // The canonical text parses back to an identical pipeline.
  PassManager PM2(/*VerifyAfterEachPass=*/false);
  ASSERT_TRUE(parsePassPipeline(PM2, PM.pipelineText(),
                                PipelineMode::Proposed, &Error))
      << Error;
  EXPECT_EQ(PM2.pipelineText(), PM.pipelineText());
}

TEST_F(PassManagerTest, DefaultPresetMatchesStandardPipeline) {
  PassManager Preset(/*VerifyAfterEachPass=*/false);
  std::string Error;
  ASSERT_TRUE(
      parsePassPipeline(Preset, "default", PipelineMode::Legacy, &Error))
      << Error;

  PassManager Standard(/*VerifyAfterEachPass=*/false);
  buildStandardPipeline(Standard, PipelineMode::Legacy);

  EXPECT_GT(Preset.size(), 10u);
  EXPECT_EQ(Preset.pipelineText(), Standard.pipelineText());
  // Mode-dependent passes carry their variant in the canonical text.
  EXPECT_NE(Preset.pipelineText().find("instcombine<legacy>"),
            std::string::npos);
}

TEST_F(PassManagerTest, UnknownPassNameIsRejectedWithTheValidList) {
  PassManager PM(/*VerifyAfterEachPass=*/false);
  std::string Error;
  EXPECT_FALSE(
      parsePassPipeline(PM, "gvn,nosuchpass", PipelineMode::Proposed, &Error));
  EXPECT_NE(Error.find("nosuchpass"), std::string::npos);
  EXPECT_NE(Error.find(availablePassNames()), std::string::npos);
  EXPECT_EQ(PM.size(), 0u) << "a failed parse must not half-populate the PM";
}

TEST_F(PassManagerTest, BadVariantsAreRejected) {
  std::string Error;
  PassManager PM(/*VerifyAfterEachPass=*/false);
  // sccp is not mode-dependent; a variant suffix is meaningless on it.
  EXPECT_FALSE(
      parsePassPipeline(PM, "sccp<legacy>", PipelineMode::Proposed, &Error));
  EXPECT_FALSE(parsePassPipeline(PM, "instcombine<frozen>",
                                 PipelineMode::Proposed, &Error));
  EXPECT_FALSE(parsePassPipeline(PM, "gvn,,dce", PipelineMode::Proposed,
                                 &Error));
}

} // namespace
