//===- ServiceTest.cpp - frost-tvd verification service tests -------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contracts the long-running verification service rests on: the wire
/// protocol round-trips and rejects garbage without taking the daemon down,
/// daemon responses are byte-identical to what `frost-tv --file` computes
/// for the same function and configuration, the interactive lane overtakes
/// a saturated bulk backlog, a full lane blocks its producer (backpressure)
/// without blocking the other lane, and the counterexample corpus
/// deduplicates structurally across campaigns while staying one parseable,
/// replayable module.
///
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/Module.h"
#include "parser/Parser.h"
#include "service/Client.h"
#include "service/Corpus.h"
#include "service/Lanes.h"
#include "service/Protocol.h"
#include "service/Server.h"
#include "service/Socket.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "tv/Campaign.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace frost;

namespace {

/// A function the default proposed pipeline verifies valid, instantly.
const char *ValidFn = "define i8 @tiny(i8 %a, i8 %b) {\n"
                      "entry:\n"
                      "  %t0 = add i8 %a, %b\n"
                      "  %t1 = and i8 %t0, %a\n"
                      "  ret i8 %t1\n"
                      "}\n";

/// The same computation under different register names: structurally
/// isomorphic to ValidFn, so the shared verdict cache serves it for free.
const char *ValidFnIso = "define i8 @tiny_iso(i8 %x, i8 %y) {\n"
                         "entry:\n"
                         "  %u0 = add i8 %x, %y\n"
                         "  %u1 = and i8 %u0, %x\n"
                         "  ret i8 %u1\n"
                         "}\n";

/// The canonical legacy-pipeline miscompile (select -> bare `or` drops the
/// poison protection): invalid under `--pipeline legacy`, with a
/// counterexample the corpus should capture.
const char *SelOrFn = "define i1 @sel_or(i1 %c, i1 %x) {\n"
                      "entry:\n"
                      "  %s = select i1 %c, i1 true, i1 %x\n"
                      "  ret i1 %s\n"
                      "}\n";

/// SelOrFn modulo names — a second campaign rediscovering the same bug.
const char *SelOrFnIso = "define i1 @sel_or_again(i1 %p, i1 %q) {\n"
                         "entry:\n"
                         "  %r = select i1 %p, i1 true, i1 %q\n"
                         "  ret i1 %r\n"
                         "}\n";

/// What `frost-tv --file` would report for one function: a single-function
/// file-source campaign under the identical configuration handleRequest
/// builds, with its own private cache (the report is cache-independent by
/// the byte-identical guarantee).
std::string cliReport(const std::string &Fn, PipelineMode Pipeline,
                      tv::CampaignKind Kind = tv::CampaignKind::IRPipeline) {
  tv::CampaignOptions O;
  O.Source = tv::CampaignSource::File;
  O.FileText = Fn;
  O.FilePath = "<direct>";
  O.Kind = Kind;
  O.Pipeline = Pipeline;
  // frost-tv defaults: memory comparison is opt-in on the command line.
  O.TV.CompareMemory = false;
  O.TV.EnumerateMemory = false;
  O.Jobs = 1;
  return tv::runCampaign(O).report();
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(ServiceProtocol, RequestRoundTrip) {
  svc::Request R;
  R.Id = 42;
  R.L = svc::Lane::Interactive;
  R.Kind = tv::CampaignKind::EndToEnd;
  R.Pipeline = PipelineMode::Legacy;
  R.Semantics = "legacy-gvn";
  R.CompareMemory = true;
  R.Passes = "instcombine,gvn";
  R.Function = "define i8 @f(i8 %a) {\nentry:\n  ret i8 %a\n}\n";

  std::string Frame = svc::serializeRequest(R);
  // Header line, then each blob followed by its '\n' separator.
  size_t HeaderEnd = Frame.find('\n');
  ASSERT_NE(HeaderEnd, std::string::npos);
  std::string Header = Frame.substr(0, HeaderEnd);

  svc::Request Back;
  uint64_t PassesLen = 0, FnLen = 0;
  std::string Error;
  ASSERT_TRUE(svc::parseRequestHeader(Header, Back, PassesLen, FnLen, &Error))
      << Error;
  EXPECT_EQ(Back.Id, 42u);
  EXPECT_EQ(Back.L, svc::Lane::Interactive);
  EXPECT_EQ(Back.Kind, tv::CampaignKind::EndToEnd);
  EXPECT_EQ(Back.Pipeline, PipelineMode::Legacy);
  EXPECT_EQ(Back.Semantics, "legacy-gvn");
  EXPECT_TRUE(Back.CompareMemory);
  EXPECT_EQ(PassesLen, R.Passes.size());
  EXPECT_EQ(FnLen, R.Function.size());
  EXPECT_EQ(Frame.substr(HeaderEnd + 1, PassesLen), R.Passes);
  EXPECT_EQ(Frame.substr(HeaderEnd + 1 + PassesLen + 1, FnLen), R.Function);
  EXPECT_EQ(Frame.back(), '\n');
}

TEST(ServiceProtocol, ResponseRoundTrip) {
  svc::Response R;
  R.Id = 7;
  R.V = svc::Response::Verdict::Invalid;
  R.Report = "functions=1 changed=1 valid=0 invalid=1 inconclusive=0\n";

  std::string Frame = svc::serializeResponse(R);
  size_t HeaderEnd = Frame.find('\n');
  ASSERT_NE(HeaderEnd, std::string::npos);

  svc::Response Back;
  uint64_t ReportLen = 0;
  std::string Error;
  ASSERT_TRUE(svc::parseResponseHeader(Frame.substr(0, HeaderEnd), Back,
                                       ReportLen, &Error))
      << Error;
  EXPECT_EQ(Back.Id, 7u);
  EXPECT_EQ(Back.V, svc::Response::Verdict::Invalid);
  EXPECT_EQ(ReportLen, R.Report.size());
  EXPECT_EQ(Frame.substr(HeaderEnd + 1, ReportLen), R.Report);
}

TEST(ServiceProtocol, MalformedHeadersAreRejected) {
  svc::Request R;
  uint64_t PassesLen = 0, FnLen = 0;
  std::string Error;
  // Wrong verb, wrong field count, unknown enum tokens, non-numeric and
  // overflowing lengths: every one must fail with a diagnostic, not crash.
  const char *Bad[] = {
      "res 0 bulk ir proposed proposed - 0 0",
      "req 0 bulk ir proposed proposed - 0",
      "req 0 bulk ir proposed proposed - 0 0 extra",
      "req 0 express ir proposed proposed - 0 0",
      "req 0 bulk mir proposed proposed - 0 0",
      "req 0 bulk ir aggressive proposed - 0 0",
      "req 0 bulk ir proposed classic - 0 0",
      "req 0 bulk ir proposed proposed maybe 0 0",
      "req x bulk ir proposed proposed - 0 0",
      "req 0 bulk ir proposed proposed - 0 99999999999999999999999",
      "",
  };
  for (const char *Line : Bad) {
    Error.clear();
    EXPECT_FALSE(svc::parseRequestHeader(Line, R, PassesLen, FnLen, &Error))
        << "accepted: '" << Line << "'";
    EXPECT_FALSE(Error.empty()) << Line;
  }

  svc::Response Resp;
  uint64_t ReportLen = 0;
  EXPECT_FALSE(svc::parseResponseHeader("resp 0 maybe 0", Resp, ReportLen,
                                        &Error));
  EXPECT_FALSE(svc::parseResponseHeader("resp 0 valid", Resp, ReportLen,
                                        &Error));
}

//===----------------------------------------------------------------------===//
// File-campaign validation (shared by frost-tv --file and the daemon)
//===----------------------------------------------------------------------===//

TEST(ServiceValidate, EmptyAndDeclarationOnlyModulesAreRejected) {
  std::string Error;
  EXPECT_FALSE(tv::validateFileCampaign("", "empty.fr", &Error));
  EXPECT_NE(Error.find("no functions to verify"), std::string::npos) << Error;

  EXPECT_FALSE(
      tv::validateFileCampaign("declare i8 @obs(i8)\n", "decl.fr", &Error));
  EXPECT_NE(Error.find("no functions to verify"), std::string::npos) << Error;
}

TEST(ServiceValidate, CrossFunctionCallsNameTheOffender) {
  std::string Module = "define i8 @callee(i8 %a) {\n"
                       "entry:\n  ret i8 %a\n}\n"
                       "define i8 @caller(i8 %a) {\n"
                       "entry:\n"
                       "  %r = call i8 @callee(i8 %a)\n"
                       "  ret i8 %r\n}\n";
  std::string Error;
  EXPECT_FALSE(tv::validateFileCampaign(Module, "cross.fr", &Error));
  // The diagnostic pins the function by index and name so a batch producer
  // can skip or split it.
  EXPECT_NE(Error.find("function #1 (@caller)"), std::string::npos) << Error;
  EXPECT_NE(Error.find("does not re-parse standalone"), std::string::npos)
      << Error;
  EXPECT_NE(Error.find("unknown function @callee"), std::string::npos)
      << Error;
}

TEST(ServiceValidate, StandaloneFunctionsPass) {
  std::string Error;
  EXPECT_TRUE(tv::validateFileCampaign(ValidFn, "ok.fr", &Error)) << Error;
  EXPECT_TRUE(tv::validateFileCampaign(SelOrFn, "ok2.fr", &Error)) << Error;
}

//===----------------------------------------------------------------------===//
// Corpus
//===----------------------------------------------------------------------===//

TEST(ServiceCorpus, DeduplicatesStructurallyAcrossCampaigns) {
  svc::Corpus C;
  EXPECT_TRUE(C.add(SelOrFn));
  // A later campaign rediscovering the same counterexample modulo names:
  // not a new entry.
  EXPECT_FALSE(C.add(SelOrFnIso));
  EXPECT_EQ(C.size(), 1u);
  // A genuinely different function is.
  EXPECT_TRUE(C.add(ValidFn));
  EXPECT_EQ(C.size(), 2u);
  // Unparseable text is refused, not stored.
  EXPECT_FALSE(C.add("define i8 @broken("));
  EXPECT_EQ(C.size(), 2u);

  // The rendered corpus is one parseable module with stable cex<N> names.
  std::string Text = C.renderModule();
  IRContext Ctx;
  Module M(Ctx, "corpus");
  ParseResult P = parseModule(Text, M);
  ASSERT_TRUE(P) << P.Error;
  std::vector<std::string> Names;
  for (Function *F : M.functions())
    if (!F->isDeclaration())
      Names.push_back(F->getName());
  EXPECT_EQ(Names, (std::vector<std::string>{"cex0", "cex1"}));
}

TEST(ServiceCorpus, ConflictingGlobalShapesAreRenamedApart) {
  // Two campaigns both name a global @g, at different types. The merged
  // module must stay parseable and mean what each entry meant alone — the
  // parser silently unifies same-name globals, so the second @g must be
  // renamed before storage.
  svc::Corpus C;
  EXPECT_TRUE(C.add("@g = global i8, 1\n"
                    "define i8 @a() {\n"
                    "entry:\n"
                    "  %v = load i8, i8* @g\n"
                    "  ret i8 %v\n"
                    "}\n"));
  EXPECT_TRUE(C.add("@g = global i8, 2\n"
                    "define i8 @b() {\n"
                    "entry:\n"
                    "  %v = load i8, i8* @g\n"
                    "  ret i8 %v\n"
                    "}\n"));
  std::string Text = C.renderModule();
  IRContext Ctx;
  Module M(Ctx, "corpus");
  ParseResult P = parseModule(Text, M);
  ASSERT_TRUE(P) << P.Error << "\n" << Text;
  // Both shapes survive under distinct names.
  EXPECT_NE(Text.find("global i8, 1"), std::string::npos) << Text;
  EXPECT_NE(Text.find("global i8, 2"), std::string::npos) << Text;
  EXPECT_NE(Text.find("@g.g"), std::string::npos) << Text;
}

TEST(ServiceCorpus, SaveLoadRoundTripKeepsDedup) {
  std::string Path = ::testing::TempDir() + "frost-corpus-test.fr";
  {
    svc::Corpus C;
    EXPECT_TRUE(C.add(SelOrFn));
    EXPECT_TRUE(C.add(ValidFn));
    std::string Error;
    ASSERT_TRUE(C.save(Path, &Error)) << Error;
  }
  svc::Corpus Back;
  std::string Error;
  ASSERT_TRUE(Back.load(Path, &Error)) << Error;
  EXPECT_EQ(Back.size(), 2u);
  // Loading goes through add(), so a reload of known entries dedups to a
  // no-op instead of doubling the corpus.
  ASSERT_TRUE(Back.load(Path, &Error)) << Error;
  EXPECT_EQ(Back.size(), 2u);
  // And isomorphs of persisted entries are still recognized.
  EXPECT_FALSE(Back.add(SelOrFnIso));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Lane scheduling and backpressure
//===----------------------------------------------------------------------===//

TEST(ServiceLanes, InteractiveOvertakesQueuedBulk) {
  ThreadPool Pool(1); // One worker: dispatch order is fully observable.
  svc::LaneScheduler Lanes(Pool, /*LaneCapacity=*/64);

  std::mutex M;
  std::condition_variable CV;
  bool Release = false;
  std::atomic<bool> GateRunning{false};

  std::vector<std::string> Order;
  auto Record = [&](std::string Tag) {
    return [&Order, &M, Tag] {
      std::lock_guard<std::mutex> Lock(M);
      Order.push_back(Tag);
    };
  };

  // Occupy the only worker, then build a bulk backlog and submit
  // interactive work behind it.
  Lanes.enqueue(svc::Lane::Bulk, [&] {
    GateRunning = true;
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Release; });
  });
  while (!GateRunning)
    std::this_thread::yield();

  for (int I = 0; I != 3; ++I)
    Lanes.enqueue(svc::Lane::Bulk, Record("bulk" + std::to_string(I)));
  for (int I = 0; I != 3; ++I)
    Lanes.enqueue(svc::Lane::Interactive, Record("int" + std::to_string(I)));
  EXPECT_EQ(Lanes.depth(svc::Lane::Bulk), 3u);
  EXPECT_EQ(Lanes.depth(svc::Lane::Interactive), 3u);

  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  CV.notify_all();
  Lanes.drain();

  // Every interactive job ran before any bulk job, despite being enqueued
  // after the whole bulk backlog. FIFO within each lane.
  EXPECT_EQ(Order, (std::vector<std::string>{"int0", "int1", "int2", "bulk0",
                                             "bulk1", "bulk2"}));
  EXPECT_EQ(Lanes.enqueued(svc::Lane::Bulk), 4u); // Gate + 3.
  EXPECT_EQ(Lanes.enqueued(svc::Lane::Interactive), 3u);
  EXPECT_EQ(Lanes.depth(svc::Lane::Bulk), 0u);
}

TEST(ServiceLanes, FullBulkLaneBlocksProducerNotInteractive) {
  ThreadPool Pool(1);
  svc::LaneScheduler Lanes(Pool, /*LaneCapacity=*/1);
  uint64_t WaitsBefore = stats::get("svc.backpressure_waits");

  std::mutex M;
  std::condition_variable CV;
  bool Release = false;
  std::atomic<bool> GateRunning{false};
  std::atomic<unsigned> Ran{0};

  Lanes.enqueue(svc::Lane::Bulk, [&] {
    GateRunning = true;
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Release; });
  });
  while (!GateRunning)
    std::this_thread::yield();

  // Fills the bulk lane to capacity (the gate was already popped).
  Lanes.enqueue(svc::Lane::Bulk, [&] { Ran.fetch_add(1); });

  // A second bulk producer must block until the lane drains.
  std::atomic<bool> Admitted{false};
  std::thread Producer([&] {
    Lanes.enqueue(svc::Lane::Bulk, [&] { Ran.fetch_add(1); });
    Admitted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(Admitted.load()) << "full lane did not exert backpressure";

  // The interactive lane is independent: admission is immediate even while
  // bulk is saturated and its producer is blocked.
  Lanes.enqueue(svc::Lane::Interactive, [&] { Ran.fetch_add(1); });

  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  CV.notify_all();
  Producer.join();
  EXPECT_TRUE(Admitted.load());
  Lanes.drain();
  EXPECT_EQ(Ran.load(), 3u);
  EXPECT_GT(stats::get("svc.backpressure_waits"), WaitsBefore);
}

//===----------------------------------------------------------------------===//
// End-to-end daemon
//===----------------------------------------------------------------------===//

/// Starts an in-process server on an ephemeral port.
struct DaemonFixture {
  svc::Server Server;
  explicit DaemonFixture(svc::ServerOptions Opts = {}) : Server([&] {
    Opts.Jobs = 2;
    return Opts;
  }()) {
    std::string Error;
    if (!Server.start(&Error))
      ADD_FAILURE() << "server start failed: " << Error;
  }
  ~DaemonFixture() {
    Server.requestShutdown();
    Server.wait();
  }
};

TEST(ServiceServer, BatchedResponsesAreByteIdenticalToCLIReports) {
  DaemonFixture D;
  svc::Client Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(D.Server.port(), &Error)) << Error;

  // A mixed pipelined batch: valid, isomorphic-valid, invalid.
  struct Case {
    const char *Fn;
    PipelineMode Pipeline;
    svc::Response::Verdict Want;
  } Cases[] = {
      {ValidFn, PipelineMode::Proposed, svc::Response::Verdict::Valid},
      {ValidFnIso, PipelineMode::Proposed, svc::Response::Verdict::Valid},
      {SelOrFn, PipelineMode::Legacy, svc::Response::Verdict::Invalid},
  };
  uint64_t Id = 0;
  for (const Case &C : Cases) {
    svc::Request Req;
    Req.Id = Id++;
    Req.Pipeline = C.Pipeline;
    Req.Function = C.Fn;
    ASSERT_TRUE(Client.send(Req, &Error)) << Error;
  }
  for (const Case &C : Cases) {
    svc::Response Resp;
    ASSERT_TRUE(Client.receive(Resp, &Error)) << Error;
    EXPECT_EQ(Resp.V, C.Want);
    // The tentpole guarantee: the daemon's report bytes are exactly what a
    // one-shot `frost-tv --file` computes for this function and config.
    EXPECT_EQ(Resp.Report, cliReport(C.Fn, C.Pipeline));
  }
  // Responses arrived in request order (ids 0,1,2 matched positionally
  // above); the invalid verdict landed in the corpus.
  EXPECT_EQ(D.Server.corpus().size(), 1u);
  EXPECT_EQ(D.Server.completedRequests(), 3u);
}

TEST(ServiceServer, IsomorphicRequestsHitTheSharedCache) {
  DaemonFixture D;
  svc::Client Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(D.Server.port(), &Error)) << Error;

  uint64_t HitsBefore = stats::get("tv.cache_hits");
  for (uint64_t Id = 0; Id != 2; ++Id) {
    svc::Request Req;
    Req.Id = Id;
    Req.Function = Id == 0 ? ValidFn : ValidFnIso;
    ASSERT_TRUE(Client.send(Req, &Error)) << Error;
  }
  for (uint64_t Id = 0; Id != 2; ++Id) {
    svc::Response Resp;
    ASSERT_TRUE(Client.receive(Resp, &Error)) << Error;
    EXPECT_EQ(Resp.V, svc::Response::Verdict::Valid);
  }
  // The isomorph was served from the shared in-memory cache.
  EXPECT_GT(stats::get("tv.cache_hits"), HitsBefore);
  EXPECT_GE(D.Server.cache().size(), 1u);

  // The stats frame reports the service counters.
  std::string Payload;
  ASSERT_TRUE(Client.stats(Payload, &Error)) << Error;
  EXPECT_NE(Payload.find("svc.requests"), std::string::npos) << Payload;
  EXPECT_NE(Payload.find("svc.cache_hits"), std::string::npos) << Payload;
  EXPECT_NE(Payload.find("svc.cache_entries"), std::string::npos) << Payload;
}

TEST(ServiceServer, CorpusDeduplicatesAcrossConnections) {
  // Two "campaigns" (separate connections) rediscover the same legacy
  // miscompile modulo register names: one corpus entry, not two.
  DaemonFixture D;
  std::string Error;
  for (int Campaign = 0; Campaign != 2; ++Campaign) {
    svc::Client Client;
    ASSERT_TRUE(Client.connect(D.Server.port(), &Error)) << Error;
    svc::Request Req;
    Req.Id = 0;
    Req.Pipeline = PipelineMode::Legacy;
    Req.Function = Campaign == 0 ? SelOrFn : SelOrFnIso;
    ASSERT_TRUE(Client.send(Req, &Error)) << Error;
    svc::Response Resp;
    ASSERT_TRUE(Client.receive(Resp, &Error)) << Error;
    EXPECT_EQ(Resp.V, svc::Response::Verdict::Invalid);
    Client.close();
  }
  EXPECT_EQ(D.Server.corpus().size(), 1u);

  // The corpus replays: its rendered module is a valid file-campaign space.
  std::string CorpusText = D.Server.corpus().renderModule();
  std::string ValidateError;
  EXPECT_TRUE(
      tv::validateFileCampaign(CorpusText, "<corpus>", &ValidateError))
      << ValidateError;
}

TEST(ServiceServer, MalformedFramesDoNotKillTheDaemon) {
  DaemonFixture D;
  std::string Error;

  // A syntactically bad header: the daemon answers `err` and keeps the
  // connection; a valid request afterwards still works.
  int Fd = svc::connectLoopback(D.Server.port(), &Error);
  ASSERT_GE(Fd, 0) << Error;
  svc::SocketStream Raw(Fd);
  ASSERT_TRUE(Raw.writeAll("utterly bogus frame\n"));
  std::string Line;
  ASSERT_TRUE(Raw.readLine(Line));
  EXPECT_EQ(Line.rfind("err ", 0), 0u) << Line;
  uint64_t Len = std::stoull(Line.substr(4));
  std::string Msg;
  ASSERT_TRUE(Raw.readBlob(Len, Msg));
  EXPECT_FALSE(Msg.empty());

  svc::Request Req;
  Req.Function = ValidFn;
  ASSERT_TRUE(Raw.writeAll(svc::serializeRequest(Req)));
  ASSERT_TRUE(Raw.readLine(Line));
  EXPECT_EQ(Line.rfind("resp 0 valid ", 0), 0u) << Line;
  uint64_t ReportLen = std::stoull(Line.substr(13));
  std::string Report;
  ASSERT_TRUE(Raw.readBlob(ReportLen, Report));
  Raw.close();

  // A framing-level break (blob length beyond the frame cap) closes that
  // connection — but only that connection.
  int Fd2 = svc::connectLoopback(D.Server.port(), &Error);
  ASSERT_GE(Fd2, 0) << Error;
  svc::SocketStream Broken(Fd2);
  ASSERT_TRUE(Broken.writeAll(
      "req 0 bulk ir proposed proposed - 0 99999999\n\n"));
  // One final `err` frame explains the break, then the connection is gone.
  ASSERT_TRUE(Broken.readLine(Line));
  EXPECT_EQ(Line.rfind("err ", 0), 0u) << Line;
  ASSERT_TRUE(Broken.readBlob(std::stoull(Line.substr(4)), Msg));
  EXPECT_NE(Msg.find("exceeds limit"), std::string::npos) << Msg;
  EXPECT_FALSE(Broken.readLine(Line)) << "connection should be closed";
  Broken.close();

  // The daemon is still serving.
  svc::Client Alive;
  ASSERT_TRUE(Alive.connect(D.Server.port(), &Error)) << Error;
  svc::Request Probe;
  Probe.Function = ValidFn;
  ASSERT_TRUE(Alive.send(Probe, &Error)) << Error;
  svc::Response Resp;
  ASSERT_TRUE(Alive.receive(Resp, &Error)) << Error;
  EXPECT_EQ(Resp.V, svc::Response::Verdict::Valid);
}

TEST(ServiceServer, InvalidCampaignSpaceIsAnErrorVerdictNotACrash) {
  DaemonFixture D;
  svc::Client Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(D.Server.port(), &Error)) << Error;

  // A request whose function text calls an undefined callee: rejected with
  // the same diagnostic shape frost-tv --file exits 2 with.
  svc::Request Req;
  Req.Id = 5;
  Req.Function = "define i8 @caller(i8 %a) {\n"
                 "entry:\n"
                 "  %r = call i8 @callee(i8 %a)\n"
                 "  ret i8 %r\n"
                 "}\n";
  ASSERT_TRUE(Client.send(Req, &Error)) << Error;
  svc::Response Resp;
  ASSERT_TRUE(Client.receive(Resp, &Error)) << Error;
  EXPECT_EQ(Resp.V, svc::Response::Verdict::Error);
  EXPECT_EQ(Resp.Id, 5u);
  EXPECT_NE(Resp.Report.find("request 5"), std::string::npos) << Resp.Report;
  EXPECT_NE(Resp.Report.find("unknown function @callee"), std::string::npos)
      << Resp.Report;

  // Bad pass pipelines are likewise an error verdict.
  svc::Request Bad;
  Bad.Id = 6;
  Bad.Passes = "no-such-pass";
  Bad.Function = ValidFn;
  ASSERT_TRUE(Client.send(Bad, &Error)) << Error;
  ASSERT_TRUE(Client.receive(Resp, &Error)) << Error;
  EXPECT_EQ(Resp.V, svc::Response::Verdict::Error);
  EXPECT_NE(Resp.Report.find("bad passes pipeline"), std::string::npos)
      << Resp.Report;
}

TEST(ServiceServer, ShutdownFramePersistsAndStops) {
  std::string CachePath = ::testing::TempDir() + "frost-svc-cache.bin";
  std::string CorpusPath = ::testing::TempDir() + "frost-svc-corpus.fr";
  std::remove(CachePath.c_str());
  std::remove(CorpusPath.c_str());
  {
    svc::ServerOptions Opts;
    Opts.CacheFile = CachePath;
    Opts.CorpusFile = CorpusPath;
    Opts.PersistEvery = 0; // Only at shutdown.
    DaemonFixture D(Opts);
    svc::Client Client;
    std::string Error;
    ASSERT_TRUE(Client.connect(D.Server.port(), &Error)) << Error;
    svc::Request Req;
    Req.Pipeline = PipelineMode::Legacy;
    Req.Function = SelOrFn;
    ASSERT_TRUE(Client.send(Req, &Error)) << Error;
    svc::Response Resp;
    ASSERT_TRUE(Client.receive(Resp, &Error)) << Error;
    EXPECT_EQ(Resp.V, svc::Response::Verdict::Invalid);
    ASSERT_TRUE(Client.shutdownServer(&Error)) << Error;
    D.Server.wait(); // The shutdown frame alone stops the daemon.
  }
  // Both files were persisted and load back warm.
  tv::VerdictCache Cache;
  std::string Error;
  ASSERT_TRUE(Cache.load(CachePath, &Error)) << Error;
  EXPECT_GE(Cache.size(), 1u);
  svc::Corpus Corpus;
  ASSERT_TRUE(Corpus.load(CorpusPath, &Error)) << Error;
  EXPECT_EQ(Corpus.size(), 1u);
  std::remove(CachePath.c_str());
  std::remove(CorpusPath.c_str());
}

} // namespace
