//===- SanitizerTest.cpp - Differential validation of the sanitize pass -------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sanitizer's correctness contract, exercised UBfuzz-style: over
/// exhaustively enumerated register programs (i1-i4) and 1-byte memory
/// programs, the sanitize<proposed> instrumentation must agree with the
/// interpreter's SanOracle ground truth on every concrete input — zero
/// false negatives, zero false positives — under both the proposed and a
/// legacy UB semantics. The naive sanitize<legacy> variant must be flagged
/// for its seeded blind spots, and campaign reports must be byte-identical
/// at any parallelism.
///
//===----------------------------------------------------------------------===//

#include "tv/Sanitizer.h"

#include "ir/Cloning.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "opt/Passes.h"
#include "tv/Campaign.h"

#include <gtest/gtest.h>

using namespace frost;
using namespace frost::tv;
using frost::sem::SemanticsConfig;

namespace {

/// The exhaustive register space: every 2-instruction, 1-argument function
/// over width-W add/shl arithmetic with nsw/nuw/exact flags and poison
/// operands (shl makes overshift and exact trips enumerable; flags make
/// kind-2 trips enumerable).
CampaignOptions registerSpace(unsigned Width) {
  CampaignOptions Opts;
  Opts.Kind = CampaignKind::Sanitizer;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.NumArgs = 1;
  Opts.Enum.Width = Width;
  Opts.Enum.WithPoison = true;
  Opts.Enum.WithFlags = true;
  Opts.Enum.Opcodes = {Opcode::Add, Opcode::Shl};
  Opts.MaxFunctions = 1u << 20;
  Opts.TV.CompareMemory = false;
  Opts.Jobs = 4;
  return Opts;
}

/// The exhaustive memory space: every 2-instruction function over i2 with
/// loads/stores/geps over one global byte plus the alloca cell, undef and
/// poison operands included (undef stores and load-before-store allocas
/// make kind-1 and kind-6 trips enumerable; geps make kind-5 enumerable).
CampaignOptions memorySpace() {
  CampaignOptions Opts;
  Opts.Kind = CampaignKind::Sanitizer;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.NumArgs = 1;
  Opts.Enum.WithPoison = true;
  Opts.Enum.WithUndef = true;
  Opts.Enum.WithMemory = true;
  Opts.Enum.MemBytes = 1;
  Opts.Enum.Opcodes = {}; // icmp/select/freeze + load/store/gep only.
  Opts.MaxFunctions = 1u << 20;
  Opts.TV.CompareMemory = true;
  Opts.Jobs = 4;
  return Opts;
}

void expectFlawless(const CampaignResult &R, const std::string &What) {
  EXPECT_GT(R.Functions, 0u) << What;
  EXPECT_EQ(R.Invalid, 0u) << What << ": " << R.report();
  EXPECT_EQ(R.Inconclusive, 0u) << What << ": " << R.report();
  EXPECT_EQ(R.SanFalseNegatives, 0u) << What;
  EXPECT_EQ(R.SanFalsePositives, 0u) << What;
  EXPECT_GT(R.SanChecksInserted, 0u) << What;
}

//===----------------------------------------------------------------------===//
// Oracles (a) + (b): zero false negatives / false positives, exhaustively
//===----------------------------------------------------------------------===//

TEST(SanitizerTest, ExhaustiveRegisterProgramsProposedSemantics) {
  for (unsigned W = 1; W <= 4; ++W) {
    CampaignOptions Opts = registerSpace(W);
    // i3/i4 register spaces are large; an exhaustive prefix keeps the test
    // in seconds while i1/i2 run complete.
    if (W >= 3)
      Opts.MaxFunctions = 20000;
    CampaignResult R = runCampaign(Opts);
    expectFlawless(R, "register i" + std::to_string(W) + " (proposed sem)");
    EXPECT_GT(R.SanTrueTrips, 0u) << "i" << W;
  }
}

TEST(SanitizerTest, ExhaustiveRegisterProgramsLegacySemantics) {
  // The ground truth fires the same dynamic-UB events under a legacy
  // semantics (undef distinct from poison, overshift yields undef): every
  // check fires *before* the offending instruction, so the trap catalogue
  // is semantics-independent and the instrumentation must stay flawless.
  for (unsigned W = 1; W <= 4; ++W) {
    CampaignOptions Opts = registerSpace(W);
    Opts.Semantics = SemanticsConfig::legacyGVN();
    if (W >= 3)
      Opts.MaxFunctions = 20000;
    CampaignResult R = runCampaign(Opts);
    expectFlawless(R, "register i" + std::to_string(W) + " (legacy sem)");
  }
}

TEST(SanitizerTest, ExhaustiveMemoryPrograms) {
  for (bool Legacy : {false, true}) {
    CampaignOptions Opts = memorySpace();
    if (Legacy)
      Opts.Semantics = SemanticsConfig::legacyGVN();
    CampaignResult R = runCampaign(Opts);
    expectFlawless(R, Legacy ? "memory (legacy sem)" : "memory (proposed sem)");
    EXPECT_GT(R.SanTrueTrips, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Determinism: byte-identical reports at any parallelism, cold or warm
//===----------------------------------------------------------------------===//

TEST(SanitizerTest, ReportsAreJobsIndependent) {
  CampaignOptions Opts = registerSpace(2);
  Opts.Jobs = 1;
  CampaignResult Serial = runCampaign(Opts);
  Opts.Jobs = 8;
  CampaignResult Parallel = runCampaign(Opts);
  EXPECT_EQ(Serial.report(), Parallel.report());
  // The instrumentation runs on every member regardless of verdict-cache
  // hits, so the checks-inserted tally in the report is jobs- and
  // cache-independent too.
  EXPECT_EQ(Serial.SanChecksInserted, Parallel.SanChecksInserted);
}

TEST(SanitizerTest, ReportsAreCacheIndependent) {
  CampaignOptions Opts = memorySpace();
  VerdictCache Warm;
  Opts.Cache = &Warm;
  CampaignResult Cold = runCampaign(Opts);
  CampaignResult Rerun = runCampaign(Opts);
  EXPECT_EQ(Cold.report(), Rerun.report());
  EXPECT_GT(Rerun.CacheHits, 0u);
  EXPECT_EQ(Rerun.CacheMisses, 0u);

  Opts.Cache = nullptr;
  Opts.UseVerdictCache = false;
  CampaignResult Uncached = runCampaign(Opts);
  EXPECT_EQ(Cold.report(), Uncached.report());
}

//===----------------------------------------------------------------------===//
// The seeded-naive legacy variant must be caught
//===----------------------------------------------------------------------===//

TEST(SanitizerTest, LegacyVariantBlindSpotsAreFlagged) {
  // sanitize<legacy> believes the "undef is harmless" folklore: no taint
  // check for literal undef, no uninitialized-load tracking. Over a space
  // with undef operands and load-before-store allocas the differential
  // oracles must surface those blind spots as false negatives.
  CampaignOptions Opts = memorySpace();
  Opts.Pipeline = PipelineMode::Legacy;
  CampaignResult R = runCampaign(Opts);
  EXPECT_GT(R.Invalid, 0u);
  EXPECT_GT(R.SanFalseNegatives, 0u);
  bool SawFalseNegative = false;
  for (const Counterexample &CE : R.Counterexamples)
    SawFalseNegative |=
        CE.Message.find("false negative") != std::string::npos;
  EXPECT_TRUE(SawFalseNegative) << R.report();
}

//===----------------------------------------------------------------------===//
// Direct checkSanitizedFunction unit coverage
//===----------------------------------------------------------------------===//

struct SanitizerUnitTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "san"};

  /// ret (load (alloca i4)) — the canonical uninitialized-load program.
  Function *uninitLoad(const std::string &Name) {
    auto *I4 = Ctx.intTy(4);
    Function *F = M.createFunction(Name, Ctx.types().fnTy(I4, {}));
    IRBuilder B(Ctx, F->addBlock("entry"));
    Value *P = B.alloca_(I4, "p");
    B.ret(B.load(P, "v"));
    return F;
  }

  SanCheckResult instrumentAndCheck(Function *F, PipelineMode Mode) {
    Function *San = cloneFunction(*F, M, F->getName() + ".san");
    createSanitizePass(Mode)->runOnFunction(*San);
    CampaignOptions Opts;
    Opts.Kind = CampaignKind::Sanitizer;
    Opts.Pipeline = Mode;
    Opts.TV.CompareMemory = true;
    SanCheckResult R = checkSanitizedFunction(M, *F, *San, Opts);
    M.eraseFunction(San);
    return R;
  }
};

TEST_F(SanitizerUnitTest, UninitLoadTripsProposedAndEvadesLegacy) {
  SanCheckResult Proposed =
      instrumentAndCheck(uninitLoad("up"), PipelineMode::Proposed);
  EXPECT_TRUE(Proposed.TV.valid()) << Proposed.TV.Message;
  EXPECT_EQ(Proposed.TrueTrips, 1u);
  EXPECT_EQ(Proposed.FalseNegatives, 0u);
  EXPECT_EQ(Proposed.FalsePositives, 0u);

  SanCheckResult Legacy =
      instrumentAndCheck(uninitLoad("ul"), PipelineMode::Legacy);
  EXPECT_TRUE(Legacy.TV.invalid());
  EXPECT_EQ(Legacy.FalseNegatives, 1u);
  EXPECT_NE(Legacy.TV.Message.find("false negative"), std::string::npos)
      << Legacy.TV.Message;
}

TEST_F(SanitizerUnitTest, CleanProgramStaysClean) {
  // ret (add i4 %a, %a) — no dynamic UB anywhere; the instrumented program
  // must be behaviour-identical on all 16 inputs and the DESIL leg must
  // validate the pipeline over it.
  auto *I4 = Ctx.intTy(4);
  Function *F = M.createFunction("clean", Ctx.types().fnTy(I4, {I4}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.add(F->arg(0), F->arg(0)));

  SanCheckResult R = instrumentAndCheck(F, PipelineMode::Proposed);
  EXPECT_TRUE(R.TV.valid()) << R.TV.Message;
  EXPECT_EQ(R.TrueTrips, 0u);
  EXPECT_EQ(R.FalseNegatives, 0u);
  EXPECT_EQ(R.FalsePositives, 0u);
  EXPECT_EQ(R.TV.InputsChecked, 32u); // 16 differential + 16 DESIL.
}

} // namespace
