//===- StructuralHashTest.cpp - Canonical-form hashing & verdict cache ----===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The properties the verdict cache rests on: the structural hash is
/// invariant under exactly the rewrites that cannot change behaviour
/// (value renaming, print/parse round-trips, block-list reordering,
/// commutative operand order) and *not* invariant under anything that can
/// (flags, widths, constants, non-commutative operand order, predicates).
/// Plus VerdictCache unit coverage (collision confirmation, on-disk
/// round-trip, corruption rejection) and the differential campaign
/// property: cached and uncached runs produce byte-identical reports at
/// any parallelism.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Enumerate.h"
#include "fuzz/RandomProgram.h"
#include "ir/Context.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/StructuralHash.h"
#include "parser/Parser.h"
#include "support/Casting.h"
#include "tv/Campaign.h"
#include "tv/VerdictCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <map>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace frost;

namespace {

/// Parses a single-function module and returns the function's hash.
StructuralHash hashOf(const std::string &Text) {
  IRContext Ctx;
  Module M(Ctx, "hash");
  ParseResult R = parseModule(Text, M);
  EXPECT_TRUE(R.Ok) << R.Error << "\n--- text was:\n" << Text;
  if (!R.Ok)
    return {};
  for (Function *F : M.functions())
    if (!F->isDeclaration())
      return structuralHash(*F);
  ADD_FAILURE() << "no function definition in:\n" << Text;
  return {};
}

std::string canonOf(const std::string &Text) {
  IRContext Ctx;
  Module M(Ctx, "canon");
  ParseResult R = parseModule(Text, M);
  EXPECT_TRUE(R.Ok) << R.Error;
  for (Function *F : M.functions())
    if (!F->isDeclaration())
      return canonicalForm(*F);
  return "";
}

//===----------------------------------------------------------------------===//
// Invariance
//===----------------------------------------------------------------------===//

TEST(StructuralHash, ValueAndFunctionRenamingInvariance) {
  // Same structure, every name different (function, arguments, values).
  StructuralHash A = hashOf("define i4 @f(i4 %a, i4 %b) {\n"
                            "entry:\n"
                            "  %x = add nsw i4 %a, %b\n"
                            "  %y = mul i4 %x, %a\n"
                            "  ret i4 %y\n"
                            "}\n");
  StructuralHash B = hashOf("define i4 @completely_other(i4 %p, i4 %q) {\n"
                            "start:\n"
                            "  %first = add nsw i4 %p, %q\n"
                            "  %second = mul i4 %first, %p\n"
                            "  ret i4 %second\n"
                            "}\n");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, StructuralHash{});
}

TEST(StructuralHash, BlockListOrderInvariance) {
  // Identical CFG, block list permuted; phi edges listed in opposite
  // order. Canonical RPO + sorted phi edges must erase both differences.
  const char *InOrder = "define i8 @f(i1 %c, i8 %a) {\n"
                        "entry:\n"
                        "  br i1 %c, label %then, label %else\n"
                        "then:\n"
                        "  %t = add i8 %a, 1\n"
                        "  br label %join\n"
                        "else:\n"
                        "  %e = add i8 %a, 2\n"
                        "  br label %join\n"
                        "join:\n"
                        "  %p = phi i8 [ %t, %then ], [ %e, %else ]\n"
                        "  ret i8 %p\n"
                        "}\n";
  const char *Shuffled = "define i8 @f(i1 %c, i8 %a) {\n"
                         "entry:\n"
                         "  br i1 %c, label %then, label %else\n"
                         "join:\n"
                         "  %p = phi i8 [ %e, %else ], [ %t, %then ]\n"
                         "  ret i8 %p\n"
                         "else:\n"
                         "  %e = add i8 %a, 2\n"
                         "  br label %join\n"
                         "then:\n"
                         "  %t = add i8 %a, 1\n"
                         "  br label %join\n"
                         "}\n";
  EXPECT_EQ(hashOf(InOrder), hashOf(Shuffled));
  EXPECT_EQ(canonOf(InOrder), canonOf(Shuffled));
}

TEST(StructuralHash, CommutativeOperandOrderInvariance) {
  for (const char *Op : {"add", "mul", "and", "or", "xor"}) {
    std::string LR = std::string("define i4 @f(i4 %a, i4 %b) {\n"
                                 "entry:\n  %x = ") +
                     Op + " i4 %a, %b\n  ret i4 %x\n}\n";
    std::string RL = std::string("define i4 @f(i4 %a, i4 %b) {\n"
                                 "entry:\n  %x = ") +
                     Op + " i4 %b, %a\n  ret i4 %x\n}\n";
    EXPECT_EQ(hashOf(LR), hashOf(RL)) << Op;
  }
}

TEST(StructuralHash, IcmpSwapAndMirrorPredicateInvariance) {
  // icmp eq a,b == icmp eq b,a; icmp ult a,b == icmp ugt b,a — one
  // canonicalization rule (sort operands, swap the predicate) covers both.
  auto Cmp = [](const char *P, const char *L, const char *R) {
    return std::string("define i1 @f(i4 %a, i4 %b) {\nentry:\n  %x = icmp ") +
           P + " i4 " + L + ", " + R + "\n  ret i1 %x\n}\n";
  };
  EXPECT_EQ(hashOf(Cmp("eq", "%a", "%b")), hashOf(Cmp("eq", "%b", "%a")));
  EXPECT_EQ(hashOf(Cmp("ne", "%a", "%b")), hashOf(Cmp("ne", "%b", "%a")));
  EXPECT_EQ(hashOf(Cmp("ult", "%a", "%b")), hashOf(Cmp("ugt", "%b", "%a")));
  EXPECT_EQ(hashOf(Cmp("sle", "%a", "%b")), hashOf(Cmp("sge", "%b", "%a")));
  // The mirror with the *same* operand order is a different comparison.
  EXPECT_NE(hashOf(Cmp("ult", "%a", "%b")), hashOf(Cmp("ugt", "%a", "%b")));
  EXPECT_NE(hashOf(Cmp("ult", "%a", "%b")), hashOf(Cmp("ule", "%a", "%b")));
}

//===----------------------------------------------------------------------===//
// Near-miss inequality
//===----------------------------------------------------------------------===//

TEST(StructuralHash, NearMissesHashDifferently) {
  auto Fn = [](const std::string &Body) {
    return "define i4 @f(i4 %a, i4 %b) {\nentry:\n" + Body + "}\n";
  };
  StructuralHash Base = hashOf(Fn("  %x = add i4 %a, %b\n  ret i4 %x\n"));
  // Flag difference.
  EXPECT_NE(Base, hashOf(Fn("  %x = add nsw i4 %a, %b\n  ret i4 %x\n")));
  EXPECT_NE(hashOf(Fn("  %x = add nsw i4 %a, %b\n  ret i4 %x\n")),
            hashOf(Fn("  %x = add nuw i4 %a, %b\n  ret i4 %x\n")));
  // Opcode difference.
  EXPECT_NE(Base, hashOf(Fn("  %x = or i4 %a, %b\n  ret i4 %x\n")));
  // Constant value difference.
  EXPECT_NE(hashOf(Fn("  %x = add i4 %a, 1\n  ret i4 %x\n")),
            hashOf(Fn("  %x = add i4 %a, 2\n  ret i4 %x\n")));
  // Poison / undef / constant are all distinct operands.
  EXPECT_NE(hashOf(Fn("  %x = add i4 %a, poison\n  ret i4 %x\n")),
            hashOf(Fn("  %x = add i4 %a, undef\n  ret i4 %x\n")));
  // Width difference.
  EXPECT_NE(hashOf("define i4 @f(i4 %a) {\nentry:\n"
                   "  %x = add i4 %a, %a\n  ret i4 %x\n}\n"),
            hashOf("define i8 @f(i8 %a) {\nentry:\n"
                   "  %x = add i8 %a, %a\n  ret i8 %x\n}\n"));
  // Swapped operands of a NON-commutative op.
  EXPECT_NE(hashOf(Fn("  %x = sub i4 %a, %b\n  ret i4 %x\n")),
            hashOf(Fn("  %x = sub i4 %b, %a\n  ret i4 %x\n")));
  EXPECT_NE(hashOf(Fn("  %x = shl i4 %a, %b\n  ret i4 %x\n")),
            hashOf(Fn("  %x = shl i4 %b, %a\n  ret i4 %x\n")));
  // Exact flag on a division-family op.
  EXPECT_NE(hashOf(Fn("  %x = lshr i4 %a, %b\n  ret i4 %x\n")),
            hashOf(Fn("  %x = lshr exact i4 %a, %b\n  ret i4 %x\n")));
  // Different argument positions are different shapes.
  EXPECT_NE(hashOf(Fn("  %x = sub i4 %a, %a\n  ret i4 %x\n")),
            hashOf(Fn("  %x = sub i4 %a, %b\n  ret i4 %x\n")));
}

TEST(StructuralHash, GlobalLayoutParticipates) {
  auto G = [](const char *Decl) {
    return std::string(Decl) + "\ndefine i8 @f() {\nentry:\n"
                               "  %v = load i8, i8* @g\n  ret i8 %v\n}\n";
  };
  // Same body, different global size: different layout, different hash.
  EXPECT_NE(hashOf(G("@g = global i8, 1")), hashOf(G("@g = global i8, 2")));
  // The global's name is part of the memory layout (sem::referencedGlobals
  // orders the observable window by name), so it participates too.
  EXPECT_NE(hashOf("@g = global i8, 1\ndefine i8 @f() {\nentry:\n"
                   "  %v = load i8, i8* @g\n  ret i8 %v\n}\n"),
            hashOf("@h = global i8, 1\ndefine i8 @f() {\nentry:\n"
                   "  %v = load i8, i8* @h\n  ret i8 %v\n}\n"));
}

//===----------------------------------------------------------------------===//
// Property tests over the fuzz spaces
//===----------------------------------------------------------------------===//

TEST(StructuralHash, RoundTripInvarianceOverEnumeratedSpace) {
  fuzz::EnumOptions Opts;
  Opts.NumInsts = 2;
  Opts.Width = 2;
  Opts.NumArgs = 1;
  Opts.WithPoison = true;
  Opts.WithUndef = true;
  Opts.WithFlags = true;

  IRContext Ctx;
  Module M(Ctx, "enum");
  uint64_t Checked = 0, Budget = 8000;
  // Also map hash -> canonical form: within the budgeted space, two
  // functions with equal hashes must have equal canonical forms (a
  // collision here would poison verdict replay).
  std::map<std::string, std::string> Seen;
  fuzz::enumerateFunctions(M, Opts, [&](Function &F) {
    StructuralHash H = structuralHash(F);
    std::string Canon = canonicalForm(F);

    std::string Text = printFunction(F);
    IRContext Ctx2;
    Module M2(Ctx2, "rt");
    ParseResult R = parseModule(Text, M2);
    EXPECT_TRUE(R.Ok) << R.Error;
    StructuralHash H2 = structuralHash(*M2.functions().front());
    EXPECT_EQ(H, H2) << "hash not stable under print/parse:\n" << Text;

    auto [It, Inserted] = Seen.emplace(H.str(), Canon);
    if (!Inserted)
      EXPECT_EQ(It->second, Canon)
          << "128-bit hash collision across different canonical forms";
    return ++Checked < Budget && !::testing::Test::HasFailure();
  });
  EXPECT_GT(Checked, 1000u);
  // The space must actually contain isomorphs, or campaign dedup is moot.
  EXPECT_LT(Seen.size(), Checked);
}

TEST(StructuralHash, CommutativeSwapInvarianceOverEnumeratedSpace) {
  fuzz::EnumOptions Opts;
  Opts.NumInsts = 2;
  Opts.Width = 2;
  Opts.NumArgs = 2;
  Opts.WithFlags = true;

  IRContext Ctx;
  Module M(Ctx, "enum");
  uint64_t Checked = 0, Budget = 6000, Swapped = 0;
  fuzz::enumerateFunctions(M, Opts, [&](Function &F) {
    StructuralHash Before = structuralHash(F);
    bool DidSwap = false;
    for (BasicBlock *BB : F)
      for (Instruction *I : *BB)
        if (I->isBinaryOp() && I->isCommutative()) {
          Value *L = I->getOperand(0);
          I->setOperand(0, I->getOperand(1));
          I->setOperand(1, L);
          DidSwap = true;
        }
    EXPECT_EQ(Before, structuralHash(F))
        << "commutative swap changed the hash:\n" << printFunction(F);
    Swapped += DidSwap;
    return ++Checked < Budget && !::testing::Test::HasFailure();
  });
  EXPECT_GT(Swapped, 100u) << "space contained almost no commutative ops";
}

TEST(StructuralHash, RoundTripInvarianceOverRandomPrograms) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    IRContext Ctx;
    Module M(Ctx, "rand");
    fuzz::RandomProgramOptions Opts;
    Opts.Seed = Seed * 9973 + 1;
    Opts.Statements = 24;
    Function *F = fuzz::generateRandomFunction(M, "p", Opts);
    StructuralHash H = structuralHash(*F);

    std::string Text = printModule(M);
    IRContext Ctx2;
    Module M2(Ctx2, "rt");
    ParseResult R = parseModule(Text, M2);
    ASSERT_TRUE(R.Ok) << R.Error;
    for (Function *G : M2.functions())
      if (!G->isDeclaration())
        EXPECT_EQ(H, structuralHash(*G)) << "seed " << Opts.Seed;
  }
}

TEST(StructuralHash, StrRoundTrip) {
  StructuralHash H{0x0123456789abcdefull, 0xfedcba9876543210ull};
  EXPECT_EQ(H.str(), "0123456789abcdeffedcba9876543210");
  StructuralHash Back;
  ASSERT_TRUE(StructuralHash::fromString(H.str(), Back));
  EXPECT_EQ(H, Back);
  EXPECT_FALSE(StructuralHash::fromString("too-short", Back));
  EXPECT_FALSE(StructuralHash::fromString(
      "0123456789abcdeffedcba987654321X", Back));
}

//===----------------------------------------------------------------------===//
// VerdictCache
//===----------------------------------------------------------------------===//

tv::CachedVerdict mkVerdict(tv::CachedVerdict::Status St,
                            const std::string &Canon,
                            const std::string &Msg = "",
                            const std::string &Blame = "") {
  tv::CachedVerdict V;
  V.St = St;
  V.Changed = true;
  V.InputsChecked = 25;
  V.PathsExplored = 75;
  V.Message = Msg;
  V.BlamedPass = Blame;
  V.CanonText = Canon;
  return V;
}

TEST(VerdictCache, InsertLookupAndCollisionConfirmation) {
  tv::VerdictCache C;
  tv::VerdictKey K;
  K.Hash = {1, 2};
  K.ConfigFP = 42;
  C.insert(K, mkVerdict(tv::CachedVerdict::Invalid, "form-A", "msg", "gvn"));

  tv::CachedVerdict Out;
  ASSERT_TRUE(C.lookup(K, "form-A", Out));
  EXPECT_EQ(Out.St, tv::CachedVerdict::Invalid);
  EXPECT_EQ(Out.Message, "msg");
  EXPECT_EQ(Out.BlamedPass, "gvn");
  EXPECT_EQ(Out.InputsChecked, 25u);

  // Same key, different canonical text: a hash collision. The entry must
  // not be returned for the colliding form...
  EXPECT_FALSE(C.lookup(K, "form-B", Out));
  // ...and both forms can coexist under the same key afterwards.
  C.insert(K, mkVerdict(tv::CachedVerdict::Valid, "form-B"));
  ASSERT_TRUE(C.lookup(K, "form-B", Out));
  EXPECT_EQ(Out.St, tv::CachedVerdict::Valid);
  ASSERT_TRUE(C.lookup(K, "form-A", Out));
  EXPECT_EQ(Out.St, tv::CachedVerdict::Invalid);

  // Different config fingerprint: different key entirely.
  tv::VerdictKey K2 = K;
  K2.ConfigFP = 43;
  EXPECT_FALSE(C.lookup(K2, "form-A", Out));
  EXPECT_EQ(C.size(), 2u);
}

TEST(VerdictCache, SaveLoadRoundTrip) {
  std::string Path = ::testing::TempDir() + "frost-verdict-cache-test.bin";
  {
    tv::VerdictCache C;
    tv::VerdictKey K1{{7, 9}, 1};
    tv::VerdictKey K2{{8, 10}, 2};
    C.insert(K1, mkVerdict(tv::CachedVerdict::Valid, "canon one\nline2\n"));
    C.insert(K2, mkVerdict(tv::CachedVerdict::Inconclusive,
                           "canon two\n", "budget exhausted", "sccp"));
    std::string Error;
    ASSERT_TRUE(C.save(Path, &Error)) << Error;
  }
  tv::VerdictCache C2;
  std::string Error;
  ASSERT_TRUE(C2.load(Path, &Error)) << Error;
  EXPECT_EQ(C2.size(), 2u);

  tv::CachedVerdict Out;
  ASSERT_TRUE(C2.lookup({{7, 9}, 1}, "canon one\nline2\n", Out));
  EXPECT_EQ(Out.St, tv::CachedVerdict::Valid);
  EXPECT_TRUE(Out.FromDisk);
  ASSERT_TRUE(C2.lookup({{8, 10}, 2}, "canon two\n", Out));
  EXPECT_EQ(Out.Message, "budget exhausted");
  EXPECT_EQ(Out.BlamedPass, "sccp");
  EXPECT_EQ(Out.PathsExplored, 75u);

  // Deterministic output: saving the reloaded cache reproduces the bytes.
  std::string Path2 = Path + ".2";
  ASSERT_TRUE(C2.save(Path2, &Error)) << Error;
  std::ifstream A(Path), B(Path2);
  std::string SA((std::istreambuf_iterator<char>(A)),
                 std::istreambuf_iterator<char>());
  std::string SB((std::istreambuf_iterator<char>(B)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(SA, SB);
  std::remove(Path.c_str());
  std::remove(Path2.c_str());
}

/// Entries under \p Dir whose names start with \p Prefix.
std::vector<std::string> entriesWithPrefix(const std::string &Dir,
                                           const std::string &Prefix) {
  std::vector<std::string> Found;
  if (DIR *D = opendir(Dir.c_str())) {
    while (struct dirent *E = readdir(D)) {
      std::string Name = E->d_name;
      if (Name.rfind(Prefix, 0) == 0)
        Found.push_back(Name);
    }
    closedir(D);
  }
  return Found;
}

TEST(VerdictCache, SaveSurvivesSquattedFixedTempName) {
  // Regression test: save() used to stage through the fixed name
  // "<path>.tmp", so anything squatting on that name — a concurrent saver,
  // a stale crash leftover, here a directory — broke every future persist.
  // The staging name must be unique per writer.
  std::string Dir = ::testing::TempDir();
  std::string Path = Dir + "frost-cache-squat.bin";
  std::string Squat = Path + ".tmp";
  std::remove(Path.c_str());
  ::rmdir(Squat.c_str()); // A prior aborted run may have left it behind.
  ASSERT_EQ(::mkdir(Squat.c_str(), 0755), 0) << strerror(errno);

  tv::VerdictCache C;
  C.insert({{3, 5}, 7}, mkVerdict(tv::CachedVerdict::Valid, "canon\n"));
  std::string Error;
  EXPECT_TRUE(C.save(Path, &Error)) << Error;

  tv::VerdictCache Back;
  ASSERT_TRUE(Back.load(Path, &Error)) << Error;
  EXPECT_EQ(Back.size(), 1u);

  ::rmdir(Squat.c_str());
  std::remove(Path.c_str());
}

TEST(VerdictCache, FailedSaveLeavesNoTempFiles) {
  // The rename target is a non-empty directory, so the final rename(2)
  // fails after the temp file was fully written: save() must report the
  // error and unlink its staging file rather than litter the cache dir.
  std::string Dir = ::testing::TempDir();
  std::string Path = Dir + "frost-cache-is-a-dir";
  ASSERT_EQ(::mkdir(Path.c_str(), 0755), 0) << strerror(errno);
  { std::ofstream Block(Path + "/occupant"); Block << "x"; }

  tv::VerdictCache C;
  C.insert({{3, 5}, 7}, mkVerdict(tv::CachedVerdict::Valid, "canon\n"));
  std::string Error;
  EXPECT_FALSE(C.save(Path, &Error));
  EXPECT_NE(Error.find(Path), std::string::npos) << Error;
  EXPECT_TRUE(entriesWithPrefix(Dir, "frost-cache-is-a-dir.tmp").empty());

  // An unwritable staging location (missing parent) fails up front, again
  // without leftovers.
  EXPECT_FALSE(C.save(Dir + "no-such-dir/cache.bin", &Error));

  std::remove((Path + "/occupant").c_str());
  ::rmdir(Path.c_str());
}

TEST(VerdictCache, ConcurrentSavesYieldAConsistentFile) {
  // Many threads persisting the same cache to the same path: with the old
  // shared ".tmp" staging name their writes interleaved and the final
  // rename could publish a torn file. With unique staging names, whichever
  // rename lands last publishes one complete, loadable image.
  std::string Path = ::testing::TempDir() + "frost-cache-hammer.bin";
  std::remove(Path.c_str());

  tv::VerdictCache C;
  for (uint64_t I = 0; I != 64; ++I)
    C.insert({{I + 1, I * 3 + 1}, I},
             mkVerdict(tv::CachedVerdict::Valid,
                       "canon " + std::to_string(I) + "\n"));

  std::vector<std::thread> Savers;
  std::atomic<unsigned> Failures{0};
  for (unsigned T = 0; T != 8; ++T)
    Savers.emplace_back([&] {
      for (unsigned I = 0; I != 10; ++I) {
        std::string Error;
        if (!C.save(Path, &Error))
          Failures.fetch_add(1);
      }
    });
  for (std::thread &T : Savers)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);

  tv::VerdictCache Back;
  std::string Error;
  ASSERT_TRUE(Back.load(Path, &Error)) << Error;
  EXPECT_EQ(Back.size(), 64u);
  EXPECT_TRUE(entriesWithPrefix(::testing::TempDir(),
                                "frost-cache-hammer.bin.tmp")
                  .empty());
  std::remove(Path.c_str());
}

TEST(VerdictCache, CorruptAndMismatchedFilesAreRejected) {
  std::string Path = ::testing::TempDir() + "frost-verdict-cache-bad.bin";
  auto WriteFile = [&](const std::string &Contents) {
    std::ofstream Out(Path, std::ios::trunc);
    Out << Contents;
  };
  std::string Error;

  tv::VerdictCache C;
  EXPECT_FALSE(C.load(Path + ".does-not-exist", &Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos);

  WriteFile("not a cache at all\n");
  EXPECT_FALSE(C.load(Path, &Error));
  EXPECT_NE(Error.find("not a frost verdict cache"), std::string::npos);

  WriteFile("frost-verdict-cache v999\n0\n");
  EXPECT_FALSE(C.load(Path, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos);

  // Truncated entry: count says one, body missing.
  WriteFile("frost-verdict-cache v1\n1\n");
  EXPECT_FALSE(C.load(Path, &Error));

  // Corrupt hash field.
  WriteFile("frost-verdict-cache v1\n1\n"
            "entry 0000000000000001 NOT_A_HASH 0 0 0 0 0 0 0\n\n\n\n");
  EXPECT_FALSE(C.load(Path, &Error));

  // Nothing merged from any failed load.
  EXPECT_EQ(C.size(), 0u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Differential campaign property
//===----------------------------------------------------------------------===//

tv::CampaignOptions smallCampaign() {
  tv::CampaignOptions Opts;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.Width = 2;
  Opts.Enum.NumArgs = 2;
  Opts.Enum.WithPoison = true;
  Opts.Enum.WithFlags = true;
  Opts.MaxFunctions = 500;
  Opts.ShardSize = 16;
  return Opts;
}

TEST(VerdictCache, CampaignReportsIdenticalCachedVsUncachedAtAnyJobs) {
  tv::CampaignOptions Uncached = smallCampaign();
  Uncached.UseVerdictCache = false;
  std::string Baseline = tv::runCampaign(Uncached).report();

  for (unsigned Jobs : {1u, 8u}) {
    tv::CampaignOptions Cached = smallCampaign();
    Cached.Jobs = Jobs;
    tv::CampaignResult R = tv::runCampaign(Cached);
    EXPECT_EQ(Baseline, R.report()) << "jobs=" << Jobs;
    EXPECT_GT(R.IsomorphicSkips, 0u) << "jobs=" << Jobs;
    EXPECT_EQ(R.CacheCollisions, 0u);

    tv::CampaignOptions UncachedJobs = smallCampaign();
    UncachedJobs.UseVerdictCache = false;
    UncachedJobs.Jobs = Jobs;
    EXPECT_EQ(Baseline, tv::runCampaign(UncachedJobs).report())
        << "jobs=" << Jobs;
  }
}

TEST(VerdictCache, CampaignWarmReuseAcrossRuns) {
  tv::VerdictCache Shared;
  tv::CampaignOptions Opts = smallCampaign();
  Opts.Cache = &Shared;

  tv::CampaignResult Cold = tv::runCampaign(Opts);
  EXPECT_GT(Cold.CacheMisses, 0u);

  tv::CampaignResult Warm = tv::runCampaign(Opts);
  EXPECT_EQ(Warm.CacheMisses, 0u);
  EXPECT_EQ(Warm.CacheHits, Warm.Functions);
  EXPECT_EQ(Cold.report(), Warm.report());

  // A different pipeline must not reuse these verdicts: every hit it gets
  // is one of its own intra-campaign isomorphic skips, and it has to
  // verify representatives afresh rather than warm-replaying them.
  tv::CampaignOptions Other = smallCampaign();
  Other.Cache = &Shared;
  Other.Passes = "dce";
  tv::CampaignResult Miss = tv::runCampaign(Other);
  EXPECT_EQ(Miss.CacheHits, Miss.IsomorphicSkips);
  EXPECT_GT(Miss.CacheMisses, 0u);
}

TEST(VerdictCache, MemoryCampaignParity) {
  // The memory space exercises globals in the canonical form and the
  // initmem sweep counters in replayed verdicts.
  tv::CampaignOptions Opts;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.Width = 2;
  Opts.Enum.NumArgs = 1;
  Opts.Enum.WithUndef = true;
  Opts.Enum.WithMemory = true;
  Opts.Enum.MemBytes = 1;
  Opts.TV.CompareMemory = true;
  Opts.TV.EnumerateMemory = true;
  Opts.MaxFunctions = 300;
  Opts.ShardSize = 16;

  tv::CampaignOptions Uncached = Opts;
  Uncached.UseVerdictCache = false;
  std::string Baseline = tv::runCampaign(Uncached).report();

  for (unsigned Jobs : {1u, 8u}) {
    tv::CampaignOptions Cached = Opts;
    Cached.Jobs = Jobs;
    tv::CampaignResult R = tv::runCampaign(Cached);
    EXPECT_EQ(Baseline, R.report()) << "jobs=" << Jobs;
  }
}

} // namespace
