//===- IRTest.cpp - Unit tests for the IR core -------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace frost;

namespace {

struct IRTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "test"};
};

TEST_F(IRTest, TypeUniquing) {
  EXPECT_EQ(Ctx.intTy(32), Ctx.intTy(32));
  EXPECT_NE(Ctx.intTy(32), Ctx.intTy(16));
  EXPECT_EQ(Ctx.ptrTy(Ctx.intTy(8)), Ctx.ptrTy(Ctx.intTy(8)));
  EXPECT_EQ(Ctx.vecTy(Ctx.intTy(8), 4), Ctx.vecTy(Ctx.intTy(8), 4));
  EXPECT_NE(Ctx.vecTy(Ctx.intTy(8), 4), Ctx.vecTy(Ctx.intTy(8), 2));
}

TEST_F(IRTest, TypeProperties) {
  EXPECT_EQ(Ctx.intTy(32)->str(), "i32");
  EXPECT_EQ(Ctx.ptrTy(Ctx.intTy(8))->str(), "i8*");
  EXPECT_EQ(Ctx.vecTy(Ctx.intTy(1), 8)->str(), "<8 x i1>");
  EXPECT_EQ(Ctx.intTy(32)->bitWidth(), 32u);
  EXPECT_EQ(Ctx.ptrTy(Ctx.intTy(8))->bitWidth(), 32u);
  EXPECT_EQ(Ctx.vecTy(Ctx.intTy(8), 4)->bitWidth(), 32u);
  EXPECT_TRUE(Ctx.boolTy()->isBool());
  EXPECT_FALSE(Ctx.intTy(2)->isBool());
}

TEST_F(IRTest, ConstantUniquing) {
  EXPECT_EQ(Ctx.getInt(32, 42), Ctx.getInt(32, 42));
  EXPECT_NE(Ctx.getInt(32, 42), Ctx.getInt(32, 43));
  EXPECT_NE(Ctx.getInt(32, 42), Ctx.getInt(16, 42));
  EXPECT_EQ(Ctx.getPoison(Ctx.intTy(8)), Ctx.getPoison(Ctx.intTy(8)));
  EXPECT_EQ(Ctx.getUndef(Ctx.intTy(8)), Ctx.getUndef(Ctx.intTy(8)));
  EXPECT_NE(static_cast<Value *>(Ctx.getPoison(Ctx.intTy(8))),
            static_cast<Value *>(Ctx.getUndef(Ctx.intTy(8))));
}

TEST_F(IRTest, BuildSimpleFunction) {
  auto *I32 = Ctx.intTy(32);
  Function *F =
      M.createFunction("addsq", Ctx.types().fnTy(I32, {I32, I32}));
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(Ctx, Entry);
  Value *Sum = B.addNSW(F->arg(0), F->arg(1), "sum");
  Value *Sq = B.mul(Sum, Sum, {}, "sq");
  B.ret(Sq);

  EXPECT_EQ(F->instructionCount(), 3u);
  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_EQ(M.getFunction("addsq"), F);
  EXPECT_FALSE(F->isDeclaration());
}

TEST_F(IRTest, UseListsTrackOperands) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *A = F->arg(0);
  Value *X = B.add(A, A);
  Value *Y = B.mul(X, A);
  B.ret(Y);

  EXPECT_EQ(A->getNumUses(), 3u);
  EXPECT_EQ(X->getNumUses(), 1u);
  EXPECT_TRUE(Y->hasOneUse());
}

TEST_F(IRTest, ReplaceAllUsesWith) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32, I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *X = B.add(F->arg(0), Ctx.getInt(32, 0), {}, "x");
  Value *Y = B.mul(X, X, {}, "y");
  B.ret(Y);

  X->replaceAllUsesWith(F->arg(0));
  EXPECT_EQ(X->getNumUses(), 0u);
  EXPECT_EQ(cast<Instruction>(Y)->getOperand(0), F->arg(0));
  EXPECT_EQ(cast<Instruction>(Y)->getOperand(1), F->arg(0));
  cast<Instruction>(X)->eraseFromParent();
  EXPECT_TRUE(verifyFunction(*F));
}

TEST_F(IRTest, PhiNodeEdgeManagement) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *L = F->addBlock("left");
  BasicBlock *R = F->addBlock("right");
  BasicBlock *Join = F->addBlock("join");

  IRBuilder B(Ctx, Entry);
  Value *C = B.icmp(ICmpPred::EQ, F->arg(0), Ctx.getInt(32, 0));
  B.condBr(C, L, R);
  B.setInsertPoint(L);
  B.br(Join);
  B.setInsertPoint(R);
  B.br(Join);
  B.setInsertPoint(Join);
  PhiNode *P = B.phi(I32, "p");
  P->addIncoming(Ctx.getInt(32, 1), L);
  P->addIncoming(Ctx.getInt(32, 2), R);
  B.ret(P);

  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_EQ(P->getNumIncoming(), 2u);
  EXPECT_EQ(P->getIncomingValueForBlock(L), Ctx.getInt(32, 1));
  EXPECT_EQ(P->getBlockIndex(R), 1);

  P->removeIncoming(0);
  EXPECT_EQ(P->getNumIncoming(), 1u);
  EXPECT_EQ(P->getIncomingBlock(0), R);
}

TEST_F(IRTest, PhiHasConstantValue) {
  auto *I32 = Ctx.intTy(32);
  PhiNode *P = PhiNode::create(I32);
  BasicBlock *B1 = BasicBlock::create(Ctx, "a");
  BasicBlock *B2 = BasicBlock::create(Ctx, "b");
  P->addIncoming(Ctx.getInt(32, 7), B1);
  P->addIncoming(Ctx.getInt(32, 7), B2);
  EXPECT_EQ(P->hasConstantValue(), Ctx.getInt(32, 7));
  P->setIncomingValue(1, Ctx.getInt(32, 8));
  EXPECT_EQ(P->hasConstantValue(), nullptr);
  P->dropAllReferences();
  delete P;
  delete B1;
  delete B2;
}

TEST_F(IRTest, SuccessorsAndPredecessors) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *A = F->addBlock("a");
  BasicBlock *Join = F->addBlock("join");
  IRBuilder B(Ctx, Entry);
  Value *C = B.icmp(ICmpPred::EQ, F->arg(0), Ctx.getInt(32, 0));
  B.condBr(C, A, Join);
  B.setInsertPoint(A);
  B.br(Join);
  B.setInsertPoint(Join);
  B.ret(Ctx.getInt(32, 0));

  EXPECT_EQ(Entry->successors(), (std::vector<BasicBlock *>{A, Join}));
  EXPECT_EQ(Join->uniquePredecessors().size(), 2u);
  EXPECT_TRUE(A->hasSinglePredecessor());
}

TEST_F(IRTest, InstructionPredicates) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  auto *Add = cast<Instruction>(B.addNSW(F->arg(0), F->arg(0)));
  auto *Div = cast<Instruction>(B.udiv(F->arg(0), F->arg(0)));
  auto *Fr = cast<Instruction>(B.freeze(F->arg(0)));
  auto *Ret = B.ret(Fr);

  EXPECT_TRUE(Add->isBinaryOp());
  EXPECT_TRUE(Add->isSpeculatable());
  EXPECT_TRUE(Add->isCommutative());
  EXPECT_TRUE(Add->hasNSW());
  EXPECT_FALSE(Div->isSpeculatable());
  EXPECT_TRUE(Div->mayTriggerImmediateUB());
  EXPECT_TRUE(Fr->isSpeculatable());
  EXPECT_FALSE(Fr->isDuplicatable());
  EXPECT_TRUE(Ret->isTerminator());

  Add->dropPoisonGeneratingFlags();
  EXPECT_FALSE(Add->hasNSW());
}

TEST_F(IRTest, CloneCopiesOperandsAndFlags) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32, I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  auto *Add = cast<Instruction>(B.addNSW(F->arg(0), F->arg(1), "x"));
  B.ret(Add);

  Instruction *C = Add->clone();
  EXPECT_EQ(C->getOpcode(), Opcode::Add);
  EXPECT_TRUE(C->hasNSW());
  EXPECT_EQ(C->getOperand(0), F->arg(0));
  EXPECT_EQ(C->getOperand(1), F->arg(1));
  C->dropAllReferences();
  delete C;
}

TEST_F(IRTest, PrinterOutput) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32, I32}));
  F->arg(0)->setName("a");
  F->arg(1)->setName("b");
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *X = B.addNSW(F->arg(0), F->arg(1), "x");
  Value *C = B.icmp(ICmpPred::SGT, X, F->arg(0), "c");
  Value *S = B.select(C, X, Ctx.getInt(32, 0), "s");
  Value *Fz = B.freeze(S, "fz");
  B.ret(Fz);

  std::string Text = F->str();
  EXPECT_NE(Text.find("define i32 @f(i32 %a, i32 %b) {"), std::string::npos);
  EXPECT_NE(Text.find("%x = add nsw i32 %a, %b"), std::string::npos);
  EXPECT_NE(Text.find("%c = icmp sgt i32 %x, %a"), std::string::npos);
  EXPECT_NE(Text.find("%s = select i1 %c, i32 %x, i32 0"), std::string::npos);
  EXPECT_NE(Text.find("%fz = freeze i32 %s"), std::string::npos);
  EXPECT_NE(Text.find("ret i32 %fz"), std::string::npos);
}

TEST_F(IRTest, PrinterPoisonAndUndefOperands) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *X = B.add(Ctx.getPoison(I32), Ctx.getUndef(I32), {}, "x");
  B.ret(X);
  std::string Text = F->str();
  EXPECT_NE(Text.find("add i32 poison, undef"), std::string::npos);
}

TEST_F(IRTest, VerifierCatchesMissingTerminator) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.add(F->arg(0), F->arg(0));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("terminator"), std::string::npos);
}

TEST_F(IRTest, VerifierCatchesUseBeforeDef) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(Ctx, Entry);
  Value *X = B.add(F->arg(0), F->arg(0), {}, "x");
  Value *Y = B.add(X, X, {}, "y");
  B.ret(Y);
  // Move %y before %x: now %y uses %x before its definition.
  cast<Instruction>(Y)->moveBefore(cast<Instruction>(X));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
}

TEST_F(IRTest, VerifierCatchesBadPhi) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Next = F->addBlock("next");
  IRBuilder B(Ctx, Entry);
  B.br(Next);
  B.setInsertPoint(Next);
  PhiNode *P = B.phi(I32, "p");
  // Missing the edge from entry.
  B.ret(P);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
}

// The parser type-checks operands, so an ill-typed freeze or phi can only be
// built programmatically (e.g. by a buggy pass calling setOperand) — the
// verifier is the last line of defense for the backend, which trusts these
// type invariants when assigning register widths.

TEST_F(IRTest, VerifierCatchesIllTypedFreeze) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *Fr = B.freeze(F->arg(0), "fr");
  B.ret(Fr);
  cast<Instruction>(Fr)->setOperand(0, Ctx.getInt(16, 0));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("freeze type mismatch"), std::string::npos);
}

TEST_F(IRTest, VerifierCatchesIllTypedVectorFreeze) {
  auto *V4 = Ctx.vecTy(Ctx.intTy(8), 4);
  auto *V2 = Ctx.vecTy(Ctx.intTy(8), 2);
  Function *F = M.createFunction("f", Ctx.types().fnTy(V4, {V4}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *Fr = B.freeze(F->arg(0), "fr");
  B.ret(Fr);
  // Same element type, different lane count: still a mismatch.
  cast<Instruction>(Fr)->setOperand(0, Ctx.getPoison(V2));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("freeze type mismatch"), std::string::npos);
}

TEST_F(IRTest, VerifierCatchesIllTypedPhiIncoming) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Next = F->addBlock("next");
  IRBuilder B(Ctx, Entry);
  B.br(Next);
  B.setInsertPoint(Next);
  PhiNode *P = B.phi(I32, "p");
  // addIncoming itself asserts type equality, so build the edge well-typed
  // and corrupt the value slot afterwards — the route a buggy pass that
  // RAUWs across types would take.
  P->addIncoming(Ctx.getInt(32, 7), Entry);
  P->setIncomingValue(0, Ctx.getInt(16, 7)); // i16 into an i32 phi.
  B.ret(P);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("phi incoming value type mismatch"),
            std::string::npos);
}

TEST_F(IRTest, VerifierCatchesPhiWithNoEdges) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(F->arg(0));
  // A phi in an unreachable block has no predecessors, so the
  // edge/predecessor cross-check is vacuous — the explicit no-edges check
  // must fire instead.
  BasicBlock *Dead = F->addBlock("dead");
  B.setInsertPoint(Dead);
  PhiNode *P = B.phi(I32, "p");
  B.ret(P);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("phi has no incoming edges"), std::string::npos);
}

TEST_F(IRTest, VerifierCatchesStoreResultUse) {
  // The parser has no syntax for naming a store's "result", so a use of one
  // can only be built programmatically — e.g. a buggy pass RAUWing a load
  // with the wrong instruction. The backend assigns no register to a store,
  // so such a use would read garbage.
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *P = B.alloca_(I32, "p");
  Value *S = B.store(F->arg(0), P);
  Value *V = B.load(P, "v");
  B.ret(V);
  cast<Instruction>(V)->getParent()->terminator()->setOperand(0, S);
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("store result has uses"), std::string::npos);
}

TEST_F(IRTest, SplitBlockKeepsCFGConsistent) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(Ctx, Entry);
  Value *X = B.add(F->arg(0), F->arg(0), {}, "x");
  Value *Y = B.mul(X, X, {}, "y");
  B.ret(Y);

  BasicBlock *Tail = Entry->splitBefore(cast<Instruction>(Y), "tail");
  EXPECT_EQ(F->size(), 2u);
  EXPECT_EQ(Entry->successors(), std::vector<BasicBlock *>{Tail});
  EXPECT_EQ(cast<Instruction>(Y)->getParent(), Tail);
  EXPECT_TRUE(verifyFunction(*F));
}

TEST_F(IRTest, CallAndDeclaration) {
  auto *I32 = Ctx.intTy(32);
  Function *Callee = M.createFunction("g", Ctx.types().fnTy(I32, {I32}));
  EXPECT_TRUE(Callee->isDeclaration());

  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *R = B.call(Callee, {F->arg(0)}, "r");
  B.ret(R);
  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_EQ(cast<CallInst>(R)->callee(), Callee);
  std::string Text = F->str();
  EXPECT_NE(Text.find("call i32 @g(i32"), std::string::npos);
}

TEST_F(IRTest, GlobalVariables) {
  auto *I32 = Ctx.intTy(32);
  GlobalVariable *G = Ctx.getGlobal("counter", I32, 4);
  EXPECT_EQ(G->sizeBytes(), 4u);
  EXPECT_EQ(G->valueType(), I32);
  EXPECT_EQ(Ctx.getGlobal("counter", I32, 4), G);

  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *L = B.load(G, "v");
  B.ret(L);
  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_NE(F->str().find("load i32, i32* @counter"), std::string::npos);
}

TEST_F(IRTest, SwitchInstruction) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *C0 = F->addBlock("c0");
  BasicBlock *Def = F->addBlock("def");
  IRBuilder B(Ctx, Entry);
  SwitchInst *SW = B.switch_(F->arg(0), Def);
  SW->addCase(Ctx.getInt(32, 0), C0);
  B.setInsertPoint(C0);
  B.ret(Ctx.getInt(32, 10));
  B.setInsertPoint(Def);
  B.ret(Ctx.getInt(32, 20));

  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_EQ(SW->getNumCases(), 1u);
  EXPECT_EQ(SW->caseDest(0), C0);
  EXPECT_EQ(Entry->successors().size(), 2u);
}

TEST_F(IRTest, VectorInstructions) {
  auto *V4 = Ctx.vecTy(Ctx.intTy(8), 4);
  Function *F = M.createFunction("f", Ctx.types().fnTy(Ctx.intTy(8), {V4}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *E = B.extractElement(F->arg(0), 2, "e");
  Value *V2 = B.insertElement(F->arg(0), E, 0, "v2");
  Value *E2 = B.extractElement(V2, 0, "e2");
  B.ret(E2);
  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_EQ(E->getType(), Ctx.intTy(8));
  EXPECT_EQ(V2->getType(), V4);
}

} // namespace
