//===- InterpTest.cpp - Operational semantics tests (Figure 5) ----------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "sem/Interp.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "tv/Refinement.h"

#include <gtest/gtest.h>

using namespace frost;
using frost::sem::DeterministicOracle;
using frost::sem::ExecResult;
using frost::sem::Interpreter;
using frost::sem::InterpOptions;
using frost::sem::SemanticsConfig;
using frost::sem::runConcrete;

namespace {

struct InterpTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "test"};
  SemanticsConfig Proposed = SemanticsConfig::proposed();
  SemanticsConfig Legacy = SemanticsConfig::legacyUnswitch();

  /// Runs F once with a deterministic oracle.
  ExecResult runOnce(Function &F, const std::vector<sem::Value> &Args,
                     const SemanticsConfig &C) {
    DeterministicOracle O;
    Interpreter I(C, O);
    EXPECT_TRUE(verifyFunction(F));
    return I.run(F, Args);
  }

  /// All deduplicated behaviours (status/ret/trace strings).
  std::vector<std::string> behaviors(Function &F,
                                     const std::vector<sem::Value> &Args,
                                     const SemanticsConfig &C) {
    tv::TVOptions Opts;
    Opts.CompareMemory = false;
    return tv::enumerateBehaviors(F, Args, C, Opts);
  }

  sem::Value iv(unsigned W, uint64_t V) {
    return sem::Value::concrete(BitVec(W, V));
  }
};

TEST_F(InterpTest, ConcreteArithmetic) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {I8, I8}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.add(F->arg(0), F->arg(1)));
  ExecResult R = runOnce(*F, {iv(8, 200), iv(8, 100)}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 44u); // Wraps without nsw.
}

TEST_F(InterpTest, NSWOverflowIsPoison) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {I8, I8}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.addNSW(F->arg(0), F->arg(1)));
  ExecResult R = runOnce(*F, {iv(8, 127), iv(8, 1)}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());

  // No overflow: plain value.
  R = runOnce(*F, {iv(8, 100), iv(8, 1)}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 101u);
}

TEST_F(InterpTest, PoisonPropagatesThroughArithmetic) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {I8}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *X = B.add(F->arg(0), Ctx.getPoison(I8));
  Value *Y = B.and_(X, Ctx.getInt(8, 0)); // Even and 0 stays poison.
  B.ret(Y);
  ExecResult R = runOnce(*F, {iv(8, 1)}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());
}

TEST_F(InterpTest, DivisionByZeroIsImmediateUB) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {I8, I8}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.udiv(F->arg(0), F->arg(1)));
  EXPECT_TRUE(runOnce(*F, {iv(8, 4), iv(8, 0)}, Proposed).ub());
  EXPECT_TRUE(
      runOnce(*F, {iv(8, 4), sem::Value::poison()}, Proposed).ub());
  // A poison dividend defers.
  ExecResult R = runOnce(*F, {sem::Value::poison(), iv(8, 2)}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());
}

TEST_F(InterpTest, SignedDivisionOverflowIsUB) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {I8, I8}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.sdiv(F->arg(0), F->arg(1)));
  EXPECT_TRUE(runOnce(*F, {iv(8, 0x80), iv(8, 0xFF)}, Proposed).ub());
  ExecResult R = runOnce(*F, {iv(8, 0x80), iv(8, 2)}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret->scalar().Bits.sext(), -64);
}

TEST_F(InterpTest, ExactDivisionYieldsPoisonOnRemainder) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {I8, I8}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.binOp(Opcode::UDiv, F->arg(0), F->arg(1),
                {false, false, /*Exact=*/true}));
  ExecResult R = runOnce(*F, {iv(8, 7), iv(8, 2)}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());
  R = runOnce(*F, {iv(8, 8), iv(8, 2)}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 4u);
}

TEST_F(InterpTest, OverShiftPoisonVsUndef) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {I8}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.shl(F->arg(0), Ctx.getInt(8, 9)));
  // Proposed semantics: poison.
  ExecResult R = runOnce(*F, {iv(8, 1)}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());
  // Legacy semantics (Section 2.3): undef, i.e. any value of the type.
  R = runOnce(*F, {iv(8, 1)}, Legacy);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isUndef());
}

TEST_F(InterpTest, ICmpOnPoisonIsPoison) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(Ctx.boolTy(), {I8}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.icmp(ICmpPred::SLT, F->arg(0), Ctx.getInt(8, 3)));
  ExecResult R = runOnce(*F, {sem::Value::poison()}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());
  R = runOnce(*F, {iv(8, 1)}, Proposed);
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 1u);
}

TEST_F(InterpTest, FreezeIsIdentityOnConcrete) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {I8}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.freeze(F->arg(0)));
  ExecResult R = runOnce(*F, {iv(8, 42)}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 42u);
}

TEST_F(InterpTest, FreezeOfPoisonYieldsEveryValue) {
  auto *I2 = Ctx.intTy(2);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I2, {}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.freeze(Ctx.getPoison(I2)));
  std::vector<std::string> Bs = behaviors(*F, {}, Proposed);
  // Exactly the four concrete i2 values, never poison.
  EXPECT_EQ(Bs.size(), 4u);
  for (const std::string &S : Bs)
    EXPECT_EQ(S.find("poison"), std::string::npos) << S;
}

TEST_F(InterpTest, FreezeValueIsConsistentAcrossUses) {
  // y = freeze poison; ret y - y must be 0 on every path: all uses of one
  // freeze agree (Section 4).
  auto *I2 = Ctx.intTy(2);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I2, {}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *Y = B.freeze(Ctx.getPoison(I2));
  B.ret(B.sub(Y, Y));
  std::vector<std::string> Bs = behaviors(*F, {}, Proposed);
  ASSERT_EQ(Bs.size(), 1u);
  EXPECT_NE(Bs[0].find("ret=0"), std::string::npos) << Bs[0];
}

TEST_F(InterpTest, UndefEachUseMayDiffer) {
  // x - x over an undef argument: under the legacy semantics each use
  // materialises independently (Section 3.1), so the result is *any* value,
  // not just 0.
  auto *I2 = Ctx.intTy(2);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I2, {I2}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.sub(F->arg(0), F->arg(0)));
  std::vector<std::string> Bs = behaviors(*F, {sem::Value::undef()}, Legacy);
  EXPECT_EQ(Bs.size(), 4u);
}

TEST_F(InterpTest, UndefIsPoisonUnderProposedSemantics) {
  auto *I2 = Ctx.intTy(2);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I2, {}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.add(Ctx.getUndef(I2), Ctx.getInt(2, 1)));
  ExecResult R = runOnce(*F, {}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());
}

TEST_F(InterpTest, BranchOnPoisonRules) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {Ctx.boolTy()}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *T = F->addBlock("t");
  BasicBlock *E = F->addBlock("e");
  IRBuilder B(Ctx, Entry);
  B.condBr(F->arg(0), T, E);
  B.setInsertPoint(T);
  B.ret(Ctx.getInt(8, 1));
  B.setInsertPoint(E);
  B.ret(Ctx.getInt(8, 2));

  // Proposed: immediate UB (Section 4).
  EXPECT_TRUE(runOnce(*F, {sem::Value::poison()}, Proposed).ub());
  // Legacy-unswitch: nondeterministic choice - both returns are possible.
  std::vector<std::string> Bs = behaviors(*F, {sem::Value::poison()}, Legacy);
  EXPECT_EQ(Bs.size(), 2u);
}

TEST_F(InterpTest, SelectPoisonConditionRules) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {Ctx.boolTy()}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.select(F->arg(0), Ctx.getInt(8, 1), Ctx.getInt(8, 2)));

  // Proposed: poison condition -> poison result (Figure 5).
  ExecResult R = runOnce(*F, {sem::Value::poison()}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());

  // Select-is-UB reading (legacy GVN world).
  EXPECT_TRUE(
      runOnce(*F, {sem::Value::poison()}, SemanticsConfig::legacyGVN()).ub());

  // Nondet reading: both arms possible.
  std::vector<std::string> Bs = behaviors(*F, {sem::Value::poison()}, Legacy);
  EXPECT_EQ(Bs.size(), 2u);
}

TEST_F(InterpTest, SelectPropagatesOnlyChosenArmPoison) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {Ctx.boolTy()}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.select(F->arg(0), Ctx.getInt(8, 1), Ctx.getPoison(I8)));

  // Proposed (phi-like): choosing the non-poison arm gives a normal value.
  ExecResult R = runOnce(*F, {iv(1, 1)}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 1u);
  R = runOnce(*F, {iv(1, 0)}, Proposed);
  EXPECT_TRUE(R.Ret->scalar().isPoison());

  // LangRef reading: either arm poison poisons the result.
  R = runOnce(*F, {iv(1, 1)}, SemanticsConfig::legacyLangRefSelect());
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());
}

TEST_F(InterpTest, PhiTakesEdgeValue) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {Ctx.boolTy()}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *T = F->addBlock("t");
  BasicBlock *Join = F->addBlock("join");
  IRBuilder B(Ctx, Entry);
  B.condBr(F->arg(0), T, Join);
  B.setInsertPoint(T);
  B.br(Join);
  B.setInsertPoint(Join);
  PhiNode *P = B.phi(I8);
  P->addIncoming(Ctx.getInt(8, 10), T);
  P->addIncoming(Ctx.getInt(8, 20), Entry);
  B.ret(P);

  EXPECT_EQ(runOnce(*F, {iv(1, 1)}, Proposed).Ret->scalar().Bits.zext(), 10u);
  EXPECT_EQ(runOnce(*F, {iv(1, 0)}, Proposed).Ret->scalar().Bits.zext(), 20u);
}

TEST_F(InterpTest, LoopCountsWithPhis) {
  // Sum 0..n-1 via a counted loop; exercises simultaneous phi update.
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("sum", Ctx.types().fnTy(I32, {I32}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Head = F->addBlock("head");
  BasicBlock *Body = F->addBlock("body");
  BasicBlock *Exit = F->addBlock("exit");
  IRBuilder B(Ctx, Entry);
  B.br(Head);
  B.setInsertPoint(Head);
  PhiNode *I = B.phi(I32, "i");
  PhiNode *S = B.phi(I32, "s");
  Value *C = B.icmp(ICmpPred::ULT, I, F->arg(0));
  B.condBr(C, Body, Exit);
  B.setInsertPoint(Body);
  Value *S1 = B.add(S, I);
  Value *I1 = B.add(I, Ctx.getInt(32, 1));
  B.br(Head);
  I->addIncoming(Ctx.getInt(32, 0), Entry);
  I->addIncoming(I1, Body);
  S->addIncoming(Ctx.getInt(32, 0), Entry);
  S->addIncoming(S1, Body);
  B.setInsertPoint(Exit);
  B.ret(S);
  ASSERT_TRUE(verifyFunction(*F));
  EXPECT_EQ(runConcrete(*F, {10}), 45u);
  EXPECT_EQ(runConcrete(*F, {0}), 0u);
}

TEST_F(InterpTest, MemoryRoundTrip) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *P = B.alloca_(I32);
  B.store(F->arg(0), P);
  B.ret(B.load(P));
  EXPECT_EQ(runConcrete(*F, {0xDEADBEEF}), 0xDEADBEEFu);
}

TEST_F(InterpTest, LoadOfUninitializedMemory) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *P = B.alloca_(I32);
  B.ret(B.load(P));
  // Proposed: poison (the reason bit-field stores need freeze, Section 5.3).
  ExecResult R = runOnce(*F, {}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());
  // Legacy: undef.
  R = runOnce(*F, {}, Legacy);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isUndef());
}

TEST_F(InterpTest, StoringPoisonPoisonsOnlyStoredBits) {
  // Store a poison i8 into the middle of an i32: reloading the whole i32 is
  // poison, but the vector view isolates lanes (Section 5.4).
  auto *I8 = Ctx.intTy(8);
  auto *V4 = Ctx.vecTy(I8, 4);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *P = B.alloca_(V4);
  std::vector<Constant *> Elems(4, Ctx.getInt(8, 7));
  B.store(Ctx.getVector(Elems), P);
  Value *P8 = B.bitcast(P, Ctx.ptrTy(I8));
  B.store(Ctx.getPoison(I8), P8); // Poison lane 0 only.
  Value *V = B.load(P);
  B.ret(B.extractElement(V, 2)); // Lane 2 unaffected.
  ExecResult R = runOnce(*F, {}, Proposed);
  ASSERT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(R.Ret->scalar().Bits.zext(), 7u);
}

TEST_F(InterpTest, LoadWholeWordWithPoisonBitIsPoison) {
  auto *I8 = Ctx.intTy(8);
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *P = B.alloca_(I32);
  B.store(Ctx.getInt(32, 0), P);
  Value *P8 = B.bitcast(P, Ctx.ptrTy(I8));
  B.store(Ctx.getPoison(I8), P8);
  B.ret(B.load(P)); // Figure 5 ty-up: any poison bit -> poison.
  ExecResult R = runOnce(*F, {}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());
}

TEST_F(InterpTest, LoadFromPoisonOrInvalidAddressIsUB) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.load(Ctx.getPoison(Ctx.ptrTy(I32))));
  EXPECT_TRUE(runOnce(*F, {}, Proposed).ub());

  Function *G = M.createFunction("g", Ctx.types().fnTy(I32, {I32}));
  IRBuilder B2(Ctx, G->addBlock("entry"));
  Value *P = B2.alloca_(I32);
  Value *Far = B2.gep(P, Ctx.getInt(32, 1000));
  B2.ret(B2.load(Far));
  EXPECT_TRUE(runOnce(*G, {iv(32, 0)}, Proposed).ub());
}

TEST_F(InterpTest, GEPInboundsOutOfObjectIsPoison) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("f", Ctx.types().fnTy(Ctx.ptrTy(I32), {}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *P = B.alloca_(I32);
  B.ret(B.gep(P, Ctx.getInt(32, 1000), /*InBounds=*/true));
  ExecResult R = runOnce(*F, {}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());
}

TEST_F(InterpTest, GEPAddressArithmetic) {
  auto *I16 = Ctx.intTy(16);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I16, {}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  GlobalVariable *G = Ctx.getGlobal("arr", I16, 8);
  B.store(Ctx.getInt(16, 111), B.gep(G, Ctx.getInt(32, 0)));
  B.store(Ctx.getInt(16, 222), B.gep(G, Ctx.getInt(32, 1)));
  B.store(Ctx.getInt(16, 333), B.gep(G, Ctx.getInt(32, 2)));
  B.ret(B.load(B.gep(G, Ctx.getInt(32, 1))));
  EXPECT_EQ(runConcrete(*F, {}), 222u);
}

TEST_F(InterpTest, CallsAndObservations) {
  auto *I32 = Ctx.intTy(32);
  Function *Obs =
      M.createFunction("observe", Ctx.types().fnTy(Ctx.voidTy(), {I32}));
  Function *Sq = M.createFunction("sq", Ctx.types().fnTy(I32, {I32}));
  {
    IRBuilder B(Ctx, Sq->addBlock("entry"));
    B.ret(B.mul(Sq->arg(0), Sq->arg(0)));
  }
  Function *F = M.createFunction("f", Ctx.types().fnTy(I32, {I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *R = B.call(Sq, {F->arg(0)});
  B.call(Obs, {R});
  B.ret(R);

  ExecResult Res = runOnce(*F, {iv(32, 5)}, Proposed);
  ASSERT_TRUE(Res.ok());
  EXPECT_EQ(Res.Ret->scalar().Bits.zext(), 25u);
  ASSERT_EQ(Res.Trace.size(), 1u);
  EXPECT_EQ(Res.Trace[0].scalar().Bits.zext(), 25u);
}

TEST_F(InterpTest, CastsAndBitcast) {
  auto *I8 = Ctx.intTy(8);
  auto *I16 = Ctx.intTy(16);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I16, {I8}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.ret(B.sext(F->arg(0), I16));
  EXPECT_EQ(runOnce(*F, {iv(8, 0xF0)}, Proposed).Ret->scalar().Bits.zext(),
            0xFFF0u);

  // bitcast <2 x i8> with one poison lane to i16 poisons everything
  // (Figure 5 ty-up on a base type).
  auto *V2 = Ctx.vecTy(I8, 2);
  Function *G = M.createFunction("g", Ctx.types().fnTy(I16, {}));
  IRBuilder B2(Ctx, G->addBlock("entry"));
  Value *Vec = Ctx.getVector(
      {Ctx.getInt(8, 1), cast<Constant>(Ctx.getPoison(I8))});
  B2.ret(B2.bitcast(Vec, I16));
  ExecResult R = runOnce(*G, {}, Proposed);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Ret->scalar().isPoison());

  // The reverse direction: bitcasting a concrete i16 to a vector splits it.
  Function *H = M.createFunction("h", Ctx.types().fnTy(I8, {I16}));
  IRBuilder B3(Ctx, H->addBlock("entry"));
  Value *AsVec = B3.bitcast(H->arg(0), V2);
  B3.ret(B3.extractElement(AsVec, 1));
  EXPECT_EQ(runOnce(*H, {iv(16, 0xAB07)}, Proposed).Ret->scalar().Bits.zext(),
            0xABu);
}

TEST_F(InterpTest, SwitchDispatch) {
  auto *I8 = Ctx.intTy(8);
  Function *F = M.createFunction("f", Ctx.types().fnTy(I8, {I8}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *C1 = F->addBlock("c1");
  BasicBlock *C2 = F->addBlock("c2");
  BasicBlock *Def = F->addBlock("def");
  IRBuilder B(Ctx, Entry);
  SwitchInst *SW = B.switch_(F->arg(0), Def);
  SW->addCase(Ctx.getInt(8, 1), C1);
  SW->addCase(Ctx.getInt(8, 2), C2);
  B.setInsertPoint(C1);
  B.ret(Ctx.getInt(8, 10));
  B.setInsertPoint(C2);
  B.ret(Ctx.getInt(8, 20));
  B.setInsertPoint(Def);
  B.ret(Ctx.getInt(8, 30));

  EXPECT_EQ(runConcrete(*F, {1}), 10u);
  EXPECT_EQ(runConcrete(*F, {2}), 20u);
  EXPECT_EQ(runConcrete(*F, {7}), 30u);
  // Switch on poison is UB under the proposed semantics.
  EXPECT_TRUE(runOnce(*F, {sem::Value::poison()}, Proposed).ub());
}

TEST_F(InterpTest, UnreachableIsUB) {
  Function *F = M.createFunction("f", Ctx.types().fnTy(Ctx.voidTy(), {}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  B.unreachable();
  EXPECT_TRUE(runOnce(*F, {}, Proposed).ub());
}

TEST_F(InterpTest, FuelLimitStopsInfiniteLoops) {
  Function *F = M.createFunction("f", Ctx.types().fnTy(Ctx.voidTy(), {}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Spin = F->addBlock("spin");
  IRBuilder B(Ctx, Entry);
  B.br(Spin);
  B.setInsertPoint(Spin);
  B.br(Spin);
  DeterministicOracle O;
  InterpOptions Opts;
  Opts.Fuel = 100;
  Interpreter I(Proposed, O, Opts);
  EXPECT_EQ(I.run(*F, {}).St, ExecResult::Status::Fuel);
}

} // namespace
