//===- ParserTest.cpp - Textual IR parser tests -------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "ir/Context.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "sem/Interp.h"

#include <gtest/gtest.h>

using namespace frost;

namespace {

struct ParserTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "parsed"};

  Function *parse(const std::string &Text, const std::string &Name) {
    ParseResult R = parseModule(Text, M);
    EXPECT_TRUE(R.Ok) << R.Error;
    if (!R.Ok)
      return nullptr;
    Function *F = M.getFunction(Name);
    EXPECT_NE(F, nullptr);
    if (F) {
      EXPECT_TRUE(verifyFunction(*F));
    }
    return F;
  }

  std::string expectError(const std::string &Text) {
    ParseResult R = parseModule(Text, M);
    EXPECT_FALSE(R.Ok);
    return R.Error;
  }
};

TEST_F(ParserTest, SimpleFunction) {
  Function *F = parse(R"(
define i32 @add3(i32 %a, i32 %b) {
entry:
  %x = add nsw i32 %a, %b
  %y = add i32 %x, 3
  ret i32 %y
}
)",
                      "add3");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->instructionCount(), 3u);
  EXPECT_EQ(F->getNumArgs(), 2u);
  EXPECT_EQ(sem::runConcrete(*F, {10, 20}), 33u);
  Instruction *First = F->entry()->front();
  EXPECT_TRUE(First->hasNSW());
  EXPECT_FALSE(First->hasNUW());
}

TEST_F(ParserTest, AllScalarInstructionKinds) {
  Function *F = parse(R"(
define i32 @kitchen(i32 %a, i32 %b, i1 %c) {
entry:
  %s = sub nuw i32 %a, %b
  %m = mul i32 %s, 3
  %d = udiv exact i32 %m, 2
  %sh = shl nsw i32 %d, 1
  %x = xor i32 %sh, -1
  %o = or i32 %x, %a
  %n = and i32 %o, %b
  %cmp = icmp slt i32 %n, %a
  %sel = select i1 %cmp, i32 %n, i32 %a
  %f = freeze i32 %sel
  %t = trunc i32 %f to i8
  %z = zext i8 %t to i32
  %se = sext i8 %t to i32
  %bc = bitcast i32 %se to i32
  br i1 %c, label %left, label %right

left:
  br label %merge

right:
  br label %merge

merge:
  %phi = phi i32 [ %z, %left ], [ %bc, %right ]
  ret i32 %phi
}
)",
                      "kitchen");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->size(), 4u);
}

TEST_F(ParserTest, PoisonUndefAndNegativeConstants) {
  Function *F = parse(R"(
define i8 @c() {
entry:
  %x = add i8 poison, -1
  %y = add i8 undef, 127
  %z = add i8 %x, %y
  ret i8 %z
}
)",
                      "c");
  ASSERT_NE(F, nullptr);
  auto It = F->entry()->begin();
  EXPECT_TRUE(isa<PoisonValue>((*It)->getOperand(0)));
  EXPECT_EQ(cast<ConstantInt>((*It)->getOperand(1))->value().sext(), -1);
  ++It;
  EXPECT_TRUE(isa<UndefValue>((*It)->getOperand(0)));
}

TEST_F(ParserTest, MemoryAndGlobals) {
  Function *F = parse(R"(
@counter = global i32, 4

define i32 @bump() {
entry:
  %p = alloca i32
  store i32 7, i32* %p
  %v = load i32, i32* %p
  %g = load i32, i32* @counter
  %sum = add i32 %v, %g
  store i32 %sum, i32* @counter
  ret i32 %sum
}
)",
                      "bump");
  ASSERT_NE(F, nullptr);
  EXPECT_NE(Ctx.findGlobal("counter"), nullptr);
  EXPECT_EQ(Ctx.findGlobal("counter")->sizeBytes(), 4u);
}

TEST_F(ParserTest, GEPAndVectors) {
  Function *F = parse(R"(
@arr = global i16, 8

define i16 @pick(<4 x i16> %v) {
entry:
  %p = gep inbounds i16* @arr, i32 2
  %l = load i16, i16* %p
  %e = extractelement <4 x i16> %v, 1
  %v2 = insertelement <4 x i16> %v, i16 %l, 0
  %e0 = extractelement <4 x i16> %v2, 0
  %r = add i16 %e, %e0
  ret i16 %r
}
)",
                      "pick");
  ASSERT_NE(F, nullptr);
  auto *G = cast<GEPInst>(F->entry()->front());
  EXPECT_TRUE(G->isInBounds());
}

TEST_F(ParserTest, ConstantVectorOperands) {
  Function *F = parse(R"(
define i8 @cv() {
entry:
  %e = extractelement <4 x i8> <i8 1, i8 2, i8 poison, i8 undef>, 1
  ret i8 %e
}
)",
                      "cv");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(sem::runConcrete(*F, {}), 2u);
}

TEST_F(ParserTest, PhiForwardReferences) {
  // The phi references %i1, defined later in the body.
  Function *F = parse(R"(
define i32 @count(i32 %n) {
entry:
  br label %head

head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit

body:
  %i1 = add i32 %i, 1
  br label %head

exit:
  ret i32 %i
}
)",
                      "count");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(sem::runConcrete(*F, {5}), 5u);
}

TEST_F(ParserTest, CallsAndDeclarations) {
  Function *F = parse(R"(
declare void @observe(i32)

define i32 @twice(i32 %x) {
entry:
  %d = add i32 %x, %x
  call void @observe(i32 %d)
  ret i32 %d
}
)",
                      "twice");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(M.getFunction("observe")->isDeclaration());
}

TEST_F(ParserTest, SwitchSyntax) {
  Function *F = parse(R"(
define i8 @classify(i8 %x) {
entry:
  switch i8 %x, label %other [ i8 0, label %zero i8 1, label %one ]

zero:
  ret i8 10

one:
  ret i8 20

other:
  ret i8 30
}
)",
                      "classify");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(sem::runConcrete(*F, {0}), 10u);
  EXPECT_EQ(sem::runConcrete(*F, {1}), 20u);
  EXPECT_EQ(sem::runConcrete(*F, {9}), 30u);
}

TEST_F(ParserTest, CommentsAndWhitespace) {
  Function *F = parse(R"(
; leading comment
define i32 @c(i32 %a) {   ; trailing comment
entry:
  ; a full-line comment
  %x = add i32 %a, 1
  ret i32 %x
}
)",
                      "c");
  ASSERT_NE(F, nullptr);
}

TEST_F(ParserTest, ErrorsAreDiagnosed) {
  EXPECT_NE(expectError("define i32 @f() { entry: ret i32 %nope }").find(
                "undefined value"),
            std::string::npos);
  EXPECT_NE(expectError("define i32 @f2(i32 %a) { entry: %x = frobnicate "
                        "i32 %a ret i32 %x }")
                .find("unknown instruction"),
            std::string::npos);
  EXPECT_NE(expectError("bogus").find("expected"), std::string::npos);
  EXPECT_NE(expectError("define i32 @g() { entry: br label %nowhere }")
                .find("undefined block"),
            std::string::npos);
  EXPECT_NE(expectError("define i999 @h() { entry: ret void }")
                .find("unsupported integer width"),
            std::string::npos);
}

TEST_F(ParserTest, RoundTripThroughPrinter) {
  const char *Source = R"(
@g = global i32, 4

declare void @observe(i32)

define i32 @roundtrip(i32 %a, i1 %c) {
entry:
  %x = add nsw i32 %a, 1
  %f = freeze i32 %x
  br i1 %c, label %then, label %merge

then:
  store i32 %f, i32* @g
  call void @observe(i32 %f)
  br label %merge

merge:
  %p = phi i32 [ %f, %then ], [ 0, %entry ]
  %s = select i1 %c, i32 %p, i32 undef
  ret i32 %s
}
)";
  ASSERT_TRUE(parseModule(Source, M).Ok);
  std::string Printed = printModule(M);

  // Parse the printed form into a fresh module and print again: the two
  // printed forms must be identical (fixpoint round-trip).
  IRContext Ctx2;
  Module M2(Ctx2, "again");
  ParseResult R = parseModule(Printed, M2);
  ASSERT_TRUE(R.Ok) << R.Error << "\n" << Printed;
  EXPECT_EQ(printModule(M2), Printed);
}

} // namespace
