//===- ShiftOracleTest.cpp - Exhaustive shift-semantics oracle ----------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-checks foldBinLane's shift rules against an independently written
/// oracle over every (width, a, b, flags) combination for i1–i4. The
/// implementation reconstructs `exact` via shl and checks nsw/nuw shl with
/// BitVec overflow predicates; the oracle instead states the LangRef /
/// Figure 5 conditions directly on plain machine integers ("any shifted-out
/// bit is non-zero", "the signed product a * 2^b is not representable"), so
/// a masking bug in either formulation shows up as a disagreement.
///
//===----------------------------------------------------------------------===//

#include "sem/Config.h"
#include "sem/Eval.h"

#include <gtest/gtest.h>

using namespace frost;
using namespace frost::sem;

namespace {

int64_t signExt(uint32_t V, unsigned W) {
  uint32_t Sign = 1u << (W - 1);
  return int64_t(V & (Sign - 1)) - int64_t(V & Sign);
}

struct RefLane {
  Lane::Kind K = Lane::Kind::Concrete;
  uint32_t Bits = 0;
};

/// The oracle: shift semantics stated straight from the rules, without
/// BitVec.
RefLane refShift(Opcode Op, ArithFlags F, uint32_t A, uint32_t B, unsigned W,
                 bool OverShiftUndef) {
  RefLane R;
  uint32_t Mask = (1u << W) - 1;
  // Shifting by >= the bit width.
  if (B >= W) {
    R.K = OverShiftUndef ? Lane::Kind::Undef : Lane::Kind::Poison;
    return R;
  }
  switch (Op) {
  case Opcode::Shl: {
    uint32_t Raw = (A << B) & Mask;
    // nuw: poison iff any shifted-out bit was non-zero, i.e. the unsigned
    // product a * 2^b does not fit in W bits.
    if (F.NUW && (uint64_t(A) << B) != Raw)
      R.K = Lane::Kind::Poison;
    // nsw: poison iff the signed product a * 2^b is not representable in W
    // signed bits (any shifted-out bit disagrees with the result sign).
    if (F.NSW && signExt(A, W) * (int64_t(1) << B) != signExt(Raw, W))
      R.K = Lane::Kind::Poison;
    R.Bits = Raw;
    return R;
  }
  case Opcode::LShr: {
    // exact: poison iff a non-zero bit is shifted out.
    if (F.Exact && (A & ((1u << B) - 1)) != 0)
      R.K = Lane::Kind::Poison;
    R.Bits = A >> B;
    return R;
  }
  case Opcode::AShr: {
    // Same exact condition as lshr: the *shifted-out* bits must be zero
    // (the sign bits that enter from the top are irrelevant).
    if (F.Exact && (A & ((1u << B) - 1)) != 0)
      R.K = Lane::Kind::Poison;
    R.Bits = uint32_t(signExt(A, W) >> B) & Mask;
    return R;
  }
  default:
    ADD_FAILURE() << "not a shift";
    return R;
  }
}

void checkAll(Opcode Op, ArithFlags F, const SemanticsConfig &Config,
              const char *Tag) {
  for (unsigned W = 1; W <= 4; ++W)
    for (uint32_t A = 0; A != (1u << W); ++A)
      for (uint32_t B = 0; B != (1u << W); ++B) {
        FoldResult Got = foldBinLane(Op, F, Lane::concrete(BitVec(W, A)),
                                     Lane::concrete(BitVec(W, B)), Config);
        RefLane Want =
            refShift(Op, F, A, B, W, Config.OverShiftYieldsUndef);
        ASSERT_FALSE(Got.UB) << Tag << " W=" << W << " A=" << A << " B=" << B;
        ASSERT_EQ(int(Got.L.K), int(Want.K))
            << Tag << " W=" << W << " A=" << A << " B=" << B;
        if (Want.K == Lane::Kind::Concrete) {
          ASSERT_EQ(uint32_t(Got.L.Bits.zext()), Want.Bits)
              << Tag << " W=" << W << " A=" << A << " B=" << B;
        }
      }
}

TEST(ShiftOracle, ShlAllFlagCombos) {
  for (bool NSW : {false, true})
    for (bool NUW : {false, true}) {
      ArithFlags F;
      F.NSW = NSW;
      F.NUW = NUW;
      checkAll(Opcode::Shl, F, SemanticsConfig::proposed(), "shl/proposed");
      checkAll(Opcode::Shl, F, SemanticsConfig::legacyUnswitch(),
               "shl/legacy");
    }
}

TEST(ShiftOracle, LShrPlainAndExact) {
  for (bool Exact : {false, true}) {
    ArithFlags F;
    F.Exact = Exact;
    checkAll(Opcode::LShr, F, SemanticsConfig::proposed(), "lshr/proposed");
    checkAll(Opcode::LShr, F, SemanticsConfig::legacyUnswitch(),
             "lshr/legacy");
  }
}

TEST(ShiftOracle, AShrPlainAndExact) {
  for (bool Exact : {false, true}) {
    ArithFlags F;
    F.Exact = Exact;
    checkAll(Opcode::AShr, F, SemanticsConfig::proposed(), "ashr/proposed");
    checkAll(Opcode::AShr, F, SemanticsConfig::legacyUnswitch(),
             "ashr/legacy");
  }
}

TEST(ShiftOracle, PoisonOperandsDefer) {
  // A poison operand of a shift defers (never immediate UB, never escapes
  // as a concrete value) — in both operand positions, for every shift.
  SemanticsConfig C = SemanticsConfig::proposed();
  for (Opcode Op : {Opcode::Shl, Opcode::LShr, Opcode::AShr}) {
    FoldResult L = foldBinLane(Op, ArithFlags(), Lane::poison(),
                               Lane::concrete(BitVec(4, 1)), C);
    FoldResult R = foldBinLane(Op, ArithFlags(), Lane::concrete(BitVec(4, 1)),
                               Lane::poison(), C);
    EXPECT_FALSE(L.UB);
    EXPECT_TRUE(L.L.isPoison());
    EXPECT_FALSE(R.UB);
    EXPECT_TRUE(R.L.isPoison());
  }
}

} // namespace
