//===- CodegenTest.cpp - Backend tests -----------------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backend correctness: every compiled kernel must compute the same result
/// on the cycle simulator as the IR does on the reference interpreter, and
/// the Section 6 lowering facts must hold structurally (freeze -> COPY,
/// poison -> IMPLICIT_DEF, legalization of sub-word freezes).
///
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "codegen/MachineSim.h"

#include "fuzz/RandomProgram.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "opt/Pass.h"
#include "parser/Parser.h"
#include "sem/Interp.h"

#include <gtest/gtest.h>

using namespace frost;
using namespace frost::codegen;

namespace {

struct CodegenTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "cg"};

  Function *parse(const std::string &Text, const std::string &Name) {
    ParseResult R = parseModule(Text, M);
    EXPECT_TRUE(R.Ok) << R.Error;
    Function *F = M.getFunction(Name);
    EXPECT_TRUE(F && verifyFunction(*F));
    return F;
  }

  /// Interpreter result (reference) vs simulator result for the same args.
  void expectMatch(Function *F, std::vector<uint32_t> Args) {
    std::vector<uint64_t> WideArgs(Args.begin(), Args.end());
    uint64_t Ref = sem::runConcrete(*F, WideArgs);
    CompiledFunction CF = compileFunction(*F);
    SimResult S = simulate(CF, Args);
    ASSERT_TRUE(S.Ok) << S.Error << "\n" << CF.MF.str();
    // Compare in the zero-extended representation of the return width.
    unsigned W = F->returnType()->bitWidth();
    uint32_t Mask = W >= 32 ? 0xFFFFFFFFu : ((1u << W) - 1);
    EXPECT_EQ(S.ReturnValue & Mask, static_cast<uint32_t>(Ref) & Mask)
        << CF.MF.str();
    EXPECT_GT(S.Cycles, 0u);
  }

  unsigned countMOp(const CompiledFunction &CF, MOp Op) {
    unsigned N = 0;
    for (const auto &B : CF.MF.Blocks)
      for (const MachineInst &I : B->Insts)
        N += I.Op == Op;
    return N;
  }
};

TEST_F(CodegenTest, StraightLineArithmetic) {
  Function *F = parse(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %y = mul i32 %x, 3
  %z = sub i32 %y, %a
  %w = xor i32 %z, %b
  ret i32 %w
}
)",
                      "f");
  expectMatch(F, {10, 20});
  expectMatch(F, {0xFFFFFFFFu, 1});
}

TEST_F(CodegenTest, DivisionAndShifts) {
  Function *F = parse(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %d = or i32 %b, 1
  %q = udiv i32 %a, %d
  %s = sdiv i32 %a, %d
  %sh = lshr i32 %a, 3
  %sa = ashr i32 %a, 3
  %t1 = add i32 %q, %s
  %t2 = add i32 %sh, %sa
  %r = add i32 %t1, %t2
  ret i32 %r
}
)",
                      "f");
  expectMatch(F, {100, 7});
  expectMatch(F, {0x80000000u, 3});
}

TEST_F(CodegenTest, SubWordLegalization) {
  // i8/i16 arithmetic must be legalized onto 32-bit registers with masks
  // and sign-extensions in the right places.
  Function *F = parse(R"(
define i8 @f(i8 %a, i8 %b) {
entry:
  %s = add i8 %a, %b
  %d = sdiv i8 %s, 3
  %c = icmp slt i8 %d, %a
  %z = zext i1 %c to i8
  %m = mul i8 %z, 7
  %r = add i8 %m, %d
  ret i8 %r
}
)",
                      "f");
  expectMatch(F, {200, 100}); // Wraps in i8.
  expectMatch(F, {127, 1});
  expectMatch(F, {0x80, 0});

  CompiledFunction CF = compileFunction(*F);
  EXPECT_GT(CF.Stats.LegalizeNodes, 0u);
}

TEST_F(CodegenTest, ControlFlowAndPhis) {
  Function *F = parse(R"(
define i32 @collatzish(i32 %n) {
entry:
  br label %head

head:
  %x = phi i32 [ %n, %entry ], [ %next, %latch ]
  %steps = phi i32 [ 0, %entry ], [ %steps1, %latch ]
  %done = icmp ule i32 %x, 1
  br i1 %done, label %exit, label %body

body:
  %isodd = and i32 %x, 1
  %odd = icmp eq i32 %isodd, 1
  br i1 %odd, label %oddcase, label %evencase

oddcase:
  %t1 = mul i32 %x, 3
  %t2 = add i32 %t1, 1
  br label %latch

evencase:
  %t3 = lshr i32 %x, 1
  br label %latch

latch:
  %next = phi i32 [ %t2, %oddcase ], [ %t3, %evencase ]
  %steps1 = add i32 %steps, 1
  br label %head

exit:
  ret i32 %steps
}
)",
                      "collatzish");
  expectMatch(F, {27});
  expectMatch(F, {1});
  expectMatch(F, {1024});
}

TEST_F(CodegenTest, PhiSwapIsHandled) {
  // Classic parallel-copy hazard: two phis exchanging values.
  Function *F = parse(R"(
define i32 @swap(i32 %n) {
entry:
  br label %head

head:
  %a = phi i32 [ 1, %entry ], [ %b, %body ]
  %b = phi i32 [ 2, %entry ], [ %a, %body ]
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit

body:
  %i1 = add i32 %i, 1
  br label %head

exit:
  %r = shl i32 %a, 4
  %r2 = or i32 %r, %b
  ret i32 %r2
}
)",
                      "swap");
  expectMatch(F, {0}); // (1,2).
  expectMatch(F, {1}); // (2,1).
  expectMatch(F, {5}); // Odd: (2,1).
}

TEST_F(CodegenTest, MemoryGlobalsAndGEP) {
  Function *F = parse(R"(
@tab = global i32, 32

define i32 @f(i32 %n) {
entry:
  br label %head

head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp ult i32 %i, 8
  br i1 %c, label %body, label %sum

body:
  %p = gep i32* @tab, i32 %i
  %sq = mul i32 %i, %i
  store i32 %sq, i32* %p
  %i1 = add i32 %i, 1
  br label %head

sum:
  %j = phi i32 [ 0, %head ], [ %j1, %sumbody ]
  %acc = phi i32 [ 0, %head ], [ %acc1, %sumbody ]
  %c2 = icmp ult i32 %j, 8
  br i1 %c2, label %sumbody, label %exit

sumbody:
  %p2 = gep i32* @tab, i32 %j
  %v = load i32, i32* %p2
  %acc1 = add i32 %acc, %v
  %j1 = add i32 %j, 1
  br label %sum

exit:
  ret i32 %acc
}
)",
                      "f");
  expectMatch(F, {0}); // Sum of squares 0..7 = 140.
}

TEST_F(CodegenTest, AllocaAndSubWordMemory) {
  Function *F = parse(R"(
define i16 @f(i16 %x) {
entry:
  %p = alloca i16
  store i16 %x, i16* %p
  %v = load i16, i16* %p
  %r = add i16 %v, 1
  ret i16 %r
}
)",
                      "f");
  expectMatch(F, {0xFFFF}); // Wraps to 0.
  expectMatch(F, {41});
}

TEST_F(CodegenTest, FreezeLowersToCopy) {
  Function *F = parse(R"(
define i32 @f(i32 %x) {
entry:
  %fr = freeze i32 %x
  %r = sub i32 %fr, %fr
  ret i32 %r
}
)",
                      "f");
  CompiledFunction CF = compileFunction(*F, {/*RunRegAlloc=*/false});
  EXPECT_EQ(CF.Stats.FreezeCopies, 1u) << CF.MF.str();
  expectMatch(F, {12345});
}

TEST_F(CodegenTest, PoisonLowersToImplicitDef) {
  Function *F = parse(R"(
define i32 @f() {
entry:
  %fr = freeze i32 poison
  %r = sub i32 %fr, %fr
  ret i32 %r
}
)",
                      "f");
  CompiledFunction CF = compileFunction(*F);
  EXPECT_EQ(CF.Stats.ImplicitDefs, 1u);
  EXPECT_GE(CF.Stats.FreezeCopies, 1u);
  // freeze pins the undef register: x - x over the copy is always 0.
  SimResult S = simulate(CF, {});
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(S.ReturnValue, 0u);
}

TEST_F(CodegenTest, SubWordFreezeIsLegalized) {
  // "We had to teach type legalization to handle freeze instructions with
  // operands of illegal type" — an i2 freeze must compile and behave.
  Function *F = parse(R"(
define i2 @f(i2 %x) {
entry:
  %fr = freeze i2 %x
  %r = add i2 %fr, 1
  ret i2 %r
}
)",
                      "f");
  expectMatch(F, {3}); // 3 + 1 wraps to 0 in i2.
  expectMatch(F, {1});
}

TEST_F(CodegenTest, SelectIsBranchless) {
  Function *F = parse(R"(
define i32 @max(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  %m = select i1 %c, i32 %a, i32 %b
  ret i32 %m
}
)",
                      "max");
  expectMatch(F, {3, 9});
  expectMatch(F, {9, 3});
  expectMatch(F, {0xFFFFFFFFu, 0}); // -1 vs 0 signed.
  CompiledFunction CF = compileFunction(*F);
  EXPECT_EQ(countMOp(CF, MOp::BNZ), 0u); // No branches for the select.
}

TEST_F(CodegenTest, SwitchLowering) {
  Function *F = parse(R"(
define i32 @classify(i32 %x) {
entry:
  switch i32 %x, label %other [ i32 0, label %zero i32 5, label %five ]

zero:
  ret i32 100

five:
  ret i32 500

other:
  ret i32 1
}
)",
                      "classify");
  expectMatch(F, {0});
  expectMatch(F, {5});
  expectMatch(F, {42});
}

TEST_F(CodegenTest, RegisterAllocationSpillsUnderPressure) {
  // Build a function with more than 10 simultaneously live values. Loads
  // are emitted in program order (they are DAG roots), so all 16 loaded
  // values are live before the reduction starts.
  std::string Src = "@buf = global i32, 64\n\n"
                    "define i32 @pressure(i32 %a, i32 %b) {\nentry:\n";
  for (int I = 0; I != 16; ++I) {
    Src += "  %p" + std::to_string(I) + " = gep i32* @buf, i32 " +
           std::to_string(I) + "\n";
    Src += "  %v" + std::to_string(I) + " = load i32, i32* %p" +
           std::to_string(I) + "\n";
  }
  Src += "  %s0 = add i32 %v0, %v1\n";
  for (int I = 1; I != 15; ++I)
    Src += "  %s" + std::to_string(I) + " = add i32 %s" +
           std::to_string(I - 1) + ", %v" + std::to_string(I + 1) + "\n";
  Src += "  ret i32 %s14\n}\n";
  Function *F = parse(Src, "pressure");

  CompiledFunction CF = compileFunction(*F);
  EXPECT_GT(CF.Stats.Spills + CF.Stats.Reloads, 0u) << CF.MF.str();
  expectMatch(F, {1000, 0});
}

TEST_F(CodegenTest, SpilledFreezeStaysPinned) {
  // freeze of poison lowers to IMPLICIT_DEF + COPY, and the COPY's result
  // here stays live across a 16-load high-pressure region, so the allocator
  // has to spill and reload around it. The reload must hand back the value
  // the COPY pinned, never a fresh materialisation of the undef register.
  // Simulating with a varying undef fill (UndefStep != 0) makes any re-run
  // IMPLICIT_DEF produce a different value, which the sum-cancellation
  // below would expose as a non-zero return.
  std::string Src = "@buf = global i32, 64\n\n"
                    "define i32 @pin() {\nentry:\n"
                    "  %fr = freeze i32 poison\n";
  for (int I = 0; I != 16; ++I) {
    Src += "  %p" + std::to_string(I) + " = gep i32* @buf, i32 " +
           std::to_string(I) + "\n";
    Src += "  %v" + std::to_string(I) + " = load i32, i32* %p" +
           std::to_string(I) + "\n";
  }
  Src += "  %s0 = add i32 %v0, %fr\n"; // Early use of %fr.
  for (int I = 1; I != 16; ++I)
    Src += "  %s" + std::to_string(I) + " = add i32 %s" +
           std::to_string(I - 1) + ", %v" + std::to_string(I) + "\n";
  Src += "  %r = sub i32 %s15, %fr\n"; // Late use: cancels iff pinned.
  Src += "  ret i32 %r\n}\n";
  Function *F = parse(Src, "pin");

  CompiledFunction CF = compileFunction(*F);
  EXPECT_EQ(CF.Stats.ImplicitDefs, 1u);
  EXPECT_GE(CF.Stats.FreezeCopies, 1u);
  EXPECT_GT(CF.Stats.Spills + CF.Stats.Reloads, 0u) << CF.MF.str();

  for (uint32_t Fill : {0xBAADF00Du, 0u, 0xFFFFFFFFu, 0x1357BEEFu}) {
    SimOptions Opts;
    Opts.UndefFill = Fill;
    Opts.UndefStep = 0x9E3779B9u;
    SimResult S = simulate(CF, {}, Opts);
    ASSERT_TRUE(S.Ok) << S.Error << "\n" << CF.MF.str();
    EXPECT_EQ(S.ImplicitDefsExecuted, 1u) << CF.MF.str();
    // @buf is zero-initialised, so the load sum is 0 and the two %fr uses
    // cancel exactly when freeze pinned a single value.
    EXPECT_EQ(S.ReturnValue, 0u) << "fill=" << Fill << "\n" << CF.MF.str();
  }
}

TEST_F(CodegenTest, AsmPrinterOutput) {
  Function *F = parse(R"(
define i32 @f(i32 %x) {
entry:
  %fr = freeze i32 %x
  ret i32 %fr
}
)",
                      "f");
  CompiledFunction CF = compileFunction(*F);
  std::string Asm = CF.MF.str();
  EXPECT_NE(Asm.find("f:"), std::string::npos);
  EXPECT_NE(Asm.find("copy"), std::string::npos);
  EXPECT_NE(Asm.find("ret"), std::string::npos);
}

TEST_F(CodegenTest, RandomKernelsMatchInterpreter) {
  // Cross-validation: optimized random kernels, interpreter vs simulator.
  for (uint64_t Seed = 40; Seed != 46; ++Seed) {
    fuzz::RandomProgramOptions Opts;
    Opts.Seed = Seed;
    Function *F = fuzz::generateRandomFunction(
        M, "k" + std::to_string(Seed), Opts);
    PassManager PM(false);
    buildStandardPipeline(PM, PipelineMode::Proposed);
    PM.run(*F);
    ASSERT_TRUE(verifyFunction(*F));
    expectMatch(F, {static_cast<uint32_t>(Seed * 77), 13});
  }
}

} // namespace
