//===- FileCheckTest.cpp - Self-tests for the directive matcher ----------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The golden harness's own golden tests: a table of (input, directives,
/// expected outcome, expected diagnostic substring) driven through
/// support/FileCheck.h, so a matcher regression cannot silently green the
/// whole tests/ir suite. Covers every directive kind, CHECK-DAG
/// reordering, variable rebinding, and the caret-diagnostic contract.
///
//===----------------------------------------------------------------------===//

#include "support/FileCheck.h"

#include <gtest/gtest.h>

using frost::filecheck::checkInput;
using frost::filecheck::FileCheckOptions;
using frost::filecheck::FileCheckResult;

namespace {

struct Case {
  const char *Name;
  const char *Checks;
  const char *Input;
  bool ExpectOk;
  const char *DiagSubstr; ///< Required in Message when !ExpectOk.
};

const Case Table[] = {
    {"plain-match",
     "CHECK: add i32 %a, %b\n",
     "  %x = add i32 %a, %b\n", true, ""},

    {"plain-miss",
     "CHECK: sub i32\n",
     "  %x = add i32 %a, %b\n", false,
     "CHECK: expected string not found in input"},

    {"order-is-enforced",
     "CHECK: second\nCHECK: first\n",
     "first\nsecond\n", false, "expected string not found"},

    {"next-adjacent",
     "CHECK: one\nCHECK-NEXT: two\n",
     "one\ntwo\n", true, ""},

    {"next-with-gap-fails",
     "CHECK: one\nCHECK-NEXT: two\n",
     "one\ngap\ntwo\n", false,
     "CHECK-NEXT: expected string not found on the next line"},

    {"next-without-anchor-fails",
     "CHECK-NEXT: two\n",
     "one\ntwo\n", false, "without a preceding match"},

    {"not-absent-passes",
     "CHECK: one\nCHECK-NOT: forbidden\nCHECK: three\n",
     "one\ntwo\nthree\n", true, ""},

    {"not-present-fails",
     "CHECK: one\nCHECK-NOT: two\nCHECK: three\n",
     "one\ntwo\nthree\n", false,
     "CHECK-NOT: excluded string found in input"},

    {"trailing-not-scans-to-end",
     "CHECK: one\nCHECK-NOT: two\n",
     "one\ntwo\n", false, "excluded string found"},

    {"label-partitions-blocks",
     // The second block's CHECK must not match text from the first.
     "CHECK-LABEL: @first\nCHECK: ret i32 1\n"
     "CHECK-LABEL: @second\nCHECK: ret i32 2\n",
     "define @first {\n  ret i32 1\n}\ndefine @second {\n  ret i32 2\n}\n",
     true, ""},

    {"label-blocks-cross-match",
     // "ret i32 1" only exists in the first block: matching it from the
     // second block's window must fail.
     "CHECK-LABEL: @second\nCHECK: ret i32 1\n",
     "define @first {\n  ret i32 1\n}\ndefine @second {\n  ret i32 2\n}\n",
     false, "CHECK: expected string not found"},

    {"dag-reorders",
     "CHECK-DAG: bravo\nCHECK-DAG: alpha\nCHECK: charlie\n",
     "alpha\nbravo\ncharlie\n", true, ""},

    {"dag-missing-fails",
     "CHECK-DAG: bravo\nCHECK-DAG: missing\n",
     "alpha\nbravo\ncharlie\n", false,
     "CHECK-DAG: expected string not found"},

    {"dag-lines-not-shared",
     // Both DAGs would match the same single line; claiming is exclusive.
     "CHECK-DAG: alpha\nCHECK-DAG: alpha\n",
     "alpha\nbeta\n", false, "CHECK-DAG: expected string not found"},

    {"regex-block",
     "CHECK: %{{[a-z]+[0-9]*}} = add\n",
     "  %tmp3 = add i8 %a, 1\n", true, ""},

    {"invalid-regex-diagnosed",
     "CHECK: {{[unclosed}}\n",
     "anything\n", false, "invalid regular expression"},

    {"var-def-then-use-next-line",
     "CHECK: [[F:%[a-z.]+]] = freeze i1 %x\nCHECK-NEXT: or i1 %c, [[F]]\n",
     "  %x.fr = freeze i1 %x\n  %s = or i1 %c, %x.fr\n", true, ""},

    {"var-use-mismatch-fails",
     "CHECK: [[F:%[a-z.]+]] = freeze i1 %x\nCHECK-NEXT: or i1 %c, [[F]]\n",
     "  %x.fr = freeze i1 %x\n  %s = or i1 %c, %other\n", false,
     "expected string not found on the next line"},

    {"var-rebinding-takes-latest",
     // V binds to %a, then rebinds to %b; the final use must see %b.
     "CHECK: [[V:%[a-z]+]] = one\nCHECK: [[V:%[a-z]+]] = two\n"
     "CHECK: use [[V]]\n",
     "%a = one\n%b = two\nuse %b\n", true, ""},

    {"var-rebinding-stale-use-fails",
     "CHECK: [[V:%[a-z]+]] = one\nCHECK: [[V:%[a-z]+]] = two\n"
     "CHECK: use [[V]]\n",
     "%a = one\n%b = two\nuse %a\n", false, "expected string not found"},

    {"undefined-var-fails",
     "CHECK: use [[NEVERDEFINED]]\n",
     "use %a\n", false, "undefined variable 'NEVERDEFINED'"},

    {"no-directives-is-an-error",
     "just a comment\n",
     "anything\n", false, "no check directives found"},

    {"empty-pattern-is-an-error",
     "CHECK:    \n",
     "anything\n", false, "empty pattern"},

    {"custom-prefix",
     "MYPREFIX: alpha\nCHECK: not-a-directive-now\n",
     "alpha\n", true, ""}, // Prefix set to MYPREFIX in the test body.
};

class FileCheckTable : public ::testing::TestWithParam<Case> {};

TEST_P(FileCheckTable, Behaves) {
  const Case &C = GetParam();
  FileCheckOptions Opts;
  if (std::string(C.Name) == "custom-prefix")
    Opts.Prefix = "MYPREFIX";
  FileCheckResult R = checkInput(C.Checks, C.Input, Opts);
  EXPECT_EQ(R.Ok, C.ExpectOk) << C.Name << "\n" << R.Message;
  if (!C.ExpectOk && C.DiagSubstr[0])
    EXPECT_NE(R.Message.find(C.DiagSubstr), std::string::npos)
        << C.Name << ": diagnostic was:\n" << R.Message;
}

INSTANTIATE_TEST_SUITE_P(Table, FileCheckTable, ::testing::ValuesIn(Table),
                         [](const auto &Info) {
                           std::string N = Info.param.Name;
                           for (char &C : N)
                             if (!std::isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });

//===----------------------------------------------------------------------===//
// Non-table cases: same-line backreferences and the diagnostic shape.
//===----------------------------------------------------------------------===//

TEST(FileCheck, SameLineBackreferenceMatches) {
  // [[X]] after [[X:...]] in one pattern compiles to a backreference.
  FileCheckResult R = checkInput("CHECK: [[X:%[a-z]+]] = add i8 [[X]], 1\n",
                                 "  %acc = add i8 %acc, 1\n");
  EXPECT_TRUE(R.Ok) << R.Message;
  R = checkInput("CHECK: [[X:%[a-z]+]] = add i8 [[X]], 1\n",
                 "  %acc = add i8 %other, 1\n");
  EXPECT_FALSE(R.Ok);
}

TEST(FileCheck, CaretDiagnosticNamesDirectiveAndWindow) {
  FileCheckOptions Opts;
  Opts.CheckFileName = "golden.fr";
  Opts.InputFileName = "opt-output";
  FileCheckResult R = checkInput("CHECK: one\nCHECK-NEXT: three\n",
                                 "one\ntwo\nthree\n", Opts);
  ASSERT_FALSE(R.Ok);
  // First failing directive: file, 1-based line, caret line.
  EXPECT_NE(R.Message.find("golden.fr:2:"), std::string::npos) << R.Message;
  EXPECT_NE(R.Message.find("CHECK-NEXT:"), std::string::npos);
  EXPECT_NE(R.Message.find("^"), std::string::npos);
  // The search window: the input line the scan gave up on.
  EXPECT_NE(R.Message.find("opt-output:2:"), std::string::npos) << R.Message;
  EXPECT_NE(R.Message.find("next line is here"), std::string::npos);
}

TEST(FileCheck, LabelDiagnosticReportsScanStart) {
  FileCheckResult R =
      checkInput("CHECK-LABEL: @missing\n", "define @other {\n}\n");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Message.find("CHECK-LABEL:"), std::string::npos);
  EXPECT_NE(R.Message.find("scanning from here"), std::string::npos);
}

} // namespace
