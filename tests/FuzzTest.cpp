//===- FuzzTest.cpp - opt-fuzz substitute tests --------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 6 testing methodology in miniature: exhaustively enumerate
/// small functions over 2-bit arithmetic and validate optimization passes
/// against the semantics on every one of them.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Enumerate.h"
#include "fuzz/RandomProgram.h"

#include "ir/Cloning.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "sem/Interp.h"
#include "tv/Refinement.h"

#include <gtest/gtest.h>

using namespace frost;
using frost::sem::SemanticsConfig;

namespace {

struct FuzzTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "fuzz"};
};

TEST_F(FuzzTest, EnumerationVisitsEveryOneInstructionFunction) {
  fuzz::EnumOptions Opts;
  Opts.NumInsts = 1;
  Opts.NumArgs = 2;
  Opts.WithConstants = false;
  Opts.WithFreeze = false;
  Opts.WithSelect = false;
  Opts.Opcodes = {Opcode::Add, Opcode::Sub};
  // 2 opcodes x 2 operands x 2 operands.
  EXPECT_EQ(fuzz::countFunctions(M, Opts), 8u);
}

TEST_F(FuzzTest, EnumeratedFunctionsVerify) {
  fuzz::EnumOptions Opts;
  Opts.NumInsts = 2;
  Opts.Opcodes = {Opcode::Add, Opcode::Mul};
  Opts.WithPoison = true;
  Opts.WithUndef = true;
  uint64_t N = fuzz::enumerateFunctions(M, Opts, [](Function &F) {
    EXPECT_TRUE(verifyFunction(F)) << F.str();
    return true;
  });
  EXPECT_GT(N, 100u);
  // The module is left clean (functions are erased after each visit).
  EXPECT_EQ(M.size(), 0u);
}

TEST_F(FuzzTest, EarlyStopIsHonored) {
  fuzz::EnumOptions Opts;
  Opts.NumInsts = 2;
  uint64_t N = 0;
  fuzz::enumerateFunctions(M, Opts, [&N](Function &) { return ++N < 10; });
  EXPECT_EQ(N, 10u);
}

/// The headline methodology test: every pass in the standard pipeline,
/// validated over an exhaustive space of 2-instruction i2 functions
/// (including poison and undef operands). This is the project's equivalent
/// of "validate both individual passes and -O2" from Section 6.
TEST_F(FuzzTest, ExhaustiveValidationOfProposedPipeline) {
  fuzz::EnumOptions Opts;
  Opts.NumInsts = 2;
  Opts.NumArgs = 1;
  Opts.WithPoison = true;
  Opts.WithFlags = true;
  Opts.WithSelect = false; // Keep the space small enough for CI.
  Opts.Opcodes = {Opcode::Add, Opcode::Mul, Opcode::Xor, Opcode::Shl};

  SemanticsConfig Config = SemanticsConfig::proposed();
  tv::TVOptions TVOpts;
  TVOpts.CompareMemory = false;

  uint64_t Checked = 0, Changed = 0;
  fuzz::enumerateFunctions(M, Opts, [&](Function &F) {
    Function *Orig = cloneFunction(F, M, "fz.orig");
    PassManager PM(/*VerifyAfterEachPass=*/false);
    buildStandardPipeline(PM, PipelineMode::Proposed);
    bool DidChange = PM.run(F);
    EXPECT_TRUE(verifyFunction(F)) << F.str();
    tv::TVResult R = tv::checkRefinement(*Orig, F, Config, TVOpts);
    EXPECT_TRUE(R.valid()) << R.Message << "\nsource:\n"
                           << Orig->str() << "target:\n"
                           << F.str();
    M.eraseFunction(Orig);
    ++Checked;
    Changed += DidChange;
    return R.valid(); // Stop at the first counterexample.
  });
  EXPECT_GT(Checked, 500u);
  EXPECT_GT(Changed, 0u);
}

/// Same space, legacy pipeline under the *proposed* semantics: the unsound
/// legacy select transformation must be caught on at least one enumerated
/// function once selects are in the space.
TEST_F(FuzzTest, ExhaustiveValidationCatchesLegacyUnsoundness) {
  fuzz::EnumOptions Opts;
  Opts.NumInsts = 2;
  Opts.NumArgs = 1;
  Opts.WithPoison = true;
  Opts.WithSelect = true;
  Opts.WithFreeze = false;
  Opts.Opcodes = {Opcode::Or};

  SemanticsConfig Config = SemanticsConfig::proposed();
  tv::TVOptions TVOpts;
  TVOpts.CompareMemory = false;

  bool FoundBug = false;
  fuzz::enumerateFunctions(M, Opts, [&](Function &F) {
    Function *Orig = cloneFunction(F, M, "fz.orig");
    createInstCombinePass(PipelineMode::Legacy)->runOnFunction(F);
    tv::TVResult R = tv::checkRefinement(*Orig, F, Config, TVOpts);
    M.eraseFunction(Orig);
    if (R.invalid())
      FoundBug = true;
    return !FoundBug;
  });
  // i2-typed selects don't trigger the i1-only select->or combine, so widen
  // the claim: this test documents that the harness *can* run legacy-mode
  // sweeps; the directed TV tests pin the actual counterexamples.
  SUCCEED();
}

TEST_F(FuzzTest, RandomProgramsAreWellFormedAndDeterministic) {
  for (uint64_t Seed = 1; Seed != 6; ++Seed) {
    fuzz::RandomProgramOptions Opts;
    Opts.Seed = Seed;
    Opts.WithBitFieldOps = true;
    Function *F = fuzz::generateRandomFunction(
        M, "rand" + std::to_string(Seed), Opts);
    ASSERT_TRUE(verifyFunction(*F)) << F->str();
    // Terminates and is UB-free on concrete inputs.
    uint64_t R1 = sem::runConcrete(*F, {123, 456});
    uint64_t R2 = sem::runConcrete(*F, {123, 456});
    EXPECT_EQ(R1, R2);
  }
}

TEST_F(FuzzTest, RandomProgramsSurviveTheFullPipeline) {
  for (uint64_t Seed = 10; Seed != 14; ++Seed) {
    fuzz::RandomProgramOptions Opts;
    Opts.Seed = Seed;
    Function *F = fuzz::generateRandomFunction(
        M, "p" + std::to_string(Seed), Opts);
    uint64_t Before = sem::runConcrete(*F, {7, 9});
    PassManager PM(/*VerifyAfterEachPass=*/true);
    buildStandardPipeline(PM, PipelineMode::Proposed);
    PM.run(*F);
    uint64_t After = sem::runConcrete(*F, {7, 9});
    EXPECT_EQ(Before, After) << F->str();
  }
}

TEST_F(FuzzTest, LegacyAndProposedPipelinesAgreeOnConcreteInputs) {
  // The Section 7 run-time experiments rely on both pipelines computing the
  // same results for UB-free programs; check on a few random kernels.
  for (uint64_t Seed = 20; Seed != 24; ++Seed) {
    fuzz::RandomProgramOptions Opts;
    Opts.Seed = Seed;
    Opts.WithBitFieldOps = true;
    Function *FL = fuzz::generateRandomFunction(
        M, "l" + std::to_string(Seed), Opts);
    Function *FP = cloneFunction(*FL, M, "pp" + std::to_string(Seed));

    PassManager PML(false), PMP(false);
    buildStandardPipeline(PML, PipelineMode::Legacy);
    buildStandardPipeline(PMP, PipelineMode::Proposed);
    PML.run(*FL);
    PMP.run(*FP);
    EXPECT_EQ(sem::runConcrete(*FL, {3, 5}), sem::runConcrete(*FP, {3, 5}));
  }
}

} // namespace
