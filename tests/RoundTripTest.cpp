//===- RoundTripTest.cpp - Printer/parser round-trip property -------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The property the whole golden harness rests on: for every function the
/// fuzzers can produce, print(parse(print(F))) is byte-identical to
/// print(F). If the printer emits anything the parser reads back
/// differently, a tests/ir golden file could pin output that frost-opt can
/// no longer reproduce from its own input.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Enumerate.h"
#include "fuzz/RandomProgram.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Pass.h"
#include "opt/Passes.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace frost;

namespace {

/// Parses \p Text into a fresh module and prints it again. Fails the test
/// (returning \p Text's parse error) if the printer's output does not
/// parse.
std::string reprint(const std::string &Text) {
  IRContext Ctx;
  Module M(Ctx, "roundtrip");
  ParseResult R = parseModule(Text, M);
  EXPECT_TRUE(R.Ok) << "printer output did not re-parse:\n"
                    << R.Error << "\n--- text was:\n"
                    << Text;
  if (!R.Ok)
    return "<parse error: " + R.Error + ">";
  return printModule(M);
}

TEST(RoundTrip, EveryEnumeratedFunctionIsStable) {
  // The opt-fuzz space with every syntactic feature switched on: poison
  // and undef literals, nsw flags, freeze, icmp/select. Large enough to
  // hit every printer path for straight-line scalar code.
  fuzz::EnumOptions Opts;
  Opts.NumInsts = 2;
  Opts.Width = 2;
  Opts.NumArgs = 1;
  Opts.WithPoison = true;
  Opts.WithUndef = true;
  Opts.WithFlags = true;

  IRContext Ctx;
  Module M(Ctx, "enum");
  uint64_t Checked = 0, Budget = 20000;
  fuzz::enumerateFunctions(M, Opts, [&](Function &F) {
    std::string Once = printFunction(F);
    std::string Twice = reprint(Once);
    EXPECT_EQ(Once, Twice);
    return ++Checked < Budget && !::testing::Test::HasFailure();
  });
  EXPECT_GT(Checked, 1000u) << "enumeration space unexpectedly small";
}

TEST(RoundTrip, EveryMemoryEnumeratedFunctionIsStable) {
  // The memory-enumerator space: loads and stores over the @m global, its
  // constant-gep cells, and the alloca scratch slot, with undef/poison
  // store operands. printFunction emits the referenced globals ahead of
  // the body, so each function's text must be standalone-parseable — this
  // is exactly what campaign shards rely on when they re-parse per-function
  // counterexamples in worker threads.
  fuzz::EnumOptions Opts;
  Opts.NumInsts = 2;
  Opts.Width = 8;
  Opts.NumArgs = 1;
  Opts.WithPoison = true;
  Opts.WithUndef = true;
  Opts.WithMemory = true;
  Opts.MemBytes = 2;

  IRContext Ctx;
  Module M(Ctx, "enum-mem");
  uint64_t Checked = 0, Budget = 20000;
  bool SawLoad = false, SawStore = false, SawGep = false, SawAlloca = false;
  fuzz::enumerateFunctions(M, Opts, [&](Function &F) {
    std::string Once = printFunction(F);
    SawLoad |= Once.find("load") != std::string::npos;
    SawStore |= Once.find("store") != std::string::npos;
    SawGep |= Once.find("gep inbounds") != std::string::npos;
    SawAlloca |= Once.find("alloca") != std::string::npos;
    std::string Twice = reprint(Once);
    EXPECT_EQ(Once, Twice);
    return ++Checked < Budget && !::testing::Test::HasFailure();
  });
  EXPECT_GT(Checked, 1000u) << "memory enumeration space unexpectedly small";
  EXPECT_TRUE(SawLoad && SawStore && SawGep && SawAlloca)
      << "memory shapes missing from the enumerated space: load=" << SawLoad
      << " store=" << SawStore << " gep=" << SawGep
      << " alloca=" << SawAlloca;
}

TEST(RoundTrip, SanitizedFunctionsVerifyAndAreStable) {
  // Sanitizer campaigns print instrumented functions into counterexample
  // reports and the verdict cache re-parses them, so everything the
  // sanitize pass can emit — guard chains, shadow allocas/globals, and
  // the `trap <id>` terminator — must be verifier-clean and survive the
  // print/parse/print round trip byte-for-byte.
  fuzz::EnumOptions Opts;
  Opts.NumInsts = 2;
  Opts.Width = 2;
  Opts.NumArgs = 1;
  Opts.WithPoison = true;
  Opts.WithUndef = true;
  Opts.WithFlags = true;
  Opts.WithMemory = true;
  Opts.MemBytes = 1;

  std::unique_ptr<Pass> Sanitize = createSanitizePass(PipelineMode::Proposed);
  IRContext Ctx;
  Module M(Ctx, "enum-san");
  uint64_t Checked = 0, Budget = 20000;
  bool SawTrap = false, SawShadow = false;
  fuzz::enumerateFunctions(M, Opts, [&](Function &F) {
    Sanitize->runOnFunction(F);
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyFunction(F, &Errors))
        << printFunction(F) << "\nfirst error: "
        << (Errors.empty() ? "<none>" : Errors.front());
    std::string Once = printFunction(F);
    SawTrap |= Once.find("trap ") != std::string::npos;
    SawShadow |= Once.find(".shadow") != std::string::npos;
    std::string Twice = reprint(Once);
    EXPECT_EQ(Once, Twice);
    return ++Checked < Budget && !::testing::Test::HasFailure();
  });
  EXPECT_GT(Checked, 1000u) << "sanitized space unexpectedly small";
  EXPECT_TRUE(SawTrap) << "no trap terminator in the sanitized space";
  EXPECT_TRUE(SawShadow) << "no shadow cell in the sanitized space";
}

TEST(RoundTrip, RandomProgramsWithLoopsAndMemoryAreStable) {
  // Random programs add the module-level features the enumerator never
  // emits: globals, gep/load/store, counted loops, wide types, and the
  // legacy bit-field load/mask/merge/store sequences.
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    IRContext Ctx;
    Module M(Ctx, "rand");
    fuzz::RandomProgramOptions Opts;
    Opts.Seed = Seed * 7727 + 3;
    Opts.Statements = 24;
    Opts.WithBitFieldOps = Seed % 2 == 0;
    fuzz::generateRandomFunction(M, "p", Opts);
    std::string Once = printModule(M);
    std::string Twice = reprint(Once);
    EXPECT_EQ(Once, Twice) << "seed " << Opts.Seed;
    if (::testing::Test::HasFailure())
      break;
  }
}

} // namespace
