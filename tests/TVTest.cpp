//===- TVTest.cpp - Translation validation of the paper's examples ------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive refinement checks reproducing the paper's Section 2-5
/// arguments: every transformation claimed sound validates, every claimed
/// unsoundness yields a counterexample, under exactly the semantics the
/// paper attributes to it.
///
//===----------------------------------------------------------------------===//

#include "tv/Refinement.h"

#include "ir/Cloning.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "tv/Campaign.h"
#include "tv/EndToEnd.h"

#include <gtest/gtest.h>

using namespace frost;
using namespace frost::tv;
using frost::sem::SelectPoisonCondRule;
using frost::sem::SemanticsConfig;

namespace {

struct TVTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "tv"};
  SemanticsConfig Proposed = SemanticsConfig::proposed();
  SemanticsConfig LegacyUnswitch = SemanticsConfig::legacyUnswitch();
  SemanticsConfig LegacyGVN = SemanticsConfig::legacyGVN();

  TVResult check(Function *Src, Function *Tgt, const SemanticsConfig &C) {
    EXPECT_TRUE(verifyFunction(*Src));
    EXPECT_TRUE(verifyFunction(*Tgt));
    return checkRefinement(*Src, *Tgt, C);
  }

  Function *fn(const std::string &Name, Type *Ret, std::vector<Type *> Params) {
    return M.createFunction(Name, Ctx.types().fnTy(Ret, std::move(Params)));
  }
};

//===----------------------------------------------------------------------===//
// Section 2.4: (a + b > a) -> (b > 0) needs nsw-poison, and plain wrapping
// add makes it wrong.
//===----------------------------------------------------------------------===//

TEST_F(TVTest, AddCmpFoldRequiresNSW) {
  auto *I3 = Ctx.intTy(3);
  auto *I1 = Ctx.boolTy();

  auto MakeSrc = [&](const std::string &Name, bool NSW) {
    Function *F = fn(Name, I1, {I3, I3});
    IRBuilder B(Ctx, F->addBlock("entry"));
    Value *Add = B.add(F->arg(0), F->arg(1), {NSW, false, false});
    B.ret(B.icmp(ICmpPred::SGT, Add, F->arg(0)));
    return F;
  };
  Function *Tgt = fn("tgt", I1, {I3, I3});
  {
    IRBuilder B(Ctx, Tgt->addBlock("entry"));
    B.ret(B.icmp(ICmpPred::SGT, Tgt->arg(1), Ctx.getInt(3, 0)));
  }

  // With a wrapping add the fold is wrong (a=MAX, b=1 flips the result).
  TVResult R = check(MakeSrc("src_wrap", false), Tgt, Proposed);
  EXPECT_TRUE(R.invalid()) << R.Message;

  // With nsw, overflow is poison and the fold is a refinement.
  R = check(MakeSrc("src_nsw", true), Tgt, Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;
}

//===----------------------------------------------------------------------===//
// Section 2.4: if signed overflow merely returned *undef*, the fold is
// still wrong - undef cannot represent a value larger than INT_MAX. This is
// the paper's argument for why poison must be stronger than undef.
//===----------------------------------------------------------------------===//

TEST_F(TVTest, UndefOverflowIsTooWeakForAddCmpFold) {
  auto *I3 = Ctx.intTy(3);
  auto *I1 = Ctx.boolTy();
  // Simulate "add that overflows to undef" at a = MAX, b = 1 by feeding the
  // comparison undef directly: src computes undef > a.
  Function *Src = fn("src", I1, {I3});
  {
    IRBuilder B(Ctx, Src->addBlock("entry"));
    B.ret(B.icmp(ICmpPred::SGT, Ctx.getUndef(I3), Src->arg(0)));
  }
  // Target is the folded form with b = 1: 1 > 0 == true.
  Function *Tgt = fn("tgt", I1, {I3});
  {
    IRBuilder B(Ctx, Tgt->addBlock("entry"));
    B.ret(Ctx.getTrue());
  }
  // At a = INT_MAX the source can only produce false; target produces true.
  TVResult R = check(Src, Tgt, LegacyUnswitch);
  EXPECT_TRUE(R.invalid()) << R.Message;
}

//===----------------------------------------------------------------------===//
// Section 3.1: rewriting 2*x as x+x duplicates an SSA use; wrong when the
// value can be undef, fine once undef is gone.
//===----------------------------------------------------------------------===//

TEST_F(TVTest, MulTwoToAddSelfAndUndef) {
  auto *I2 = Ctx.intTy(2);
  Function *Src = fn("src", I2, {I2});
  {
    IRBuilder B(Ctx, Src->addBlock("entry"));
    B.ret(B.mul(Src->arg(0), Ctx.getInt(2, 2)));
  }
  Function *Tgt = fn("tgt", I2, {I2});
  {
    IRBuilder B(Ctx, Tgt->addBlock("entry"));
    B.ret(B.add(Tgt->arg(0), Tgt->arg(0)));
  }

  // Legacy semantics: x = undef makes 2*x even but x+x arbitrary.
  TVResult R = check(Src, Tgt, LegacyUnswitch);
  EXPECT_TRUE(R.invalid()) << R.Message;
  EXPECT_NE(R.Message.find("undef"), std::string::npos) << R.Message;

  // Proposed semantics (no undef): the rewrite is sound.
  R = check(Src, Tgt, Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;
}

//===----------------------------------------------------------------------===//
// Section 3.2: hoisting 1/k past the k != 0 check is wrong under undef
// because the two uses of k may disagree.
//===----------------------------------------------------------------------===//

TEST_F(TVTest, HoistingDivisionPastControlFlow) {
  auto *I2 = Ctx.intTy(2);
  auto *I1 = Ctx.boolTy();
  Function *Obs =
      M.createFunction("observe", Ctx.types().fnTy(Ctx.voidTy(), {I2}));

  // src: if (k != 0) { if (c) observe(1 / k); }
  Function *Src = fn("src", Ctx.voidTy(), {I2, I1});
  {
    BasicBlock *Entry = Src->addBlock("entry");
    BasicBlock *NonZero = Src->addBlock("nonzero");
    BasicBlock *Use = Src->addBlock("use");
    BasicBlock *Exit = Src->addBlock("exit");
    IRBuilder B(Ctx, Entry);
    Value *K = Src->arg(0);
    B.condBr(B.icmp(ICmpPred::NE, K, Ctx.getInt(2, 0)), NonZero, Exit);
    B.setInsertPoint(NonZero);
    B.condBr(Src->arg(1), Use, Exit);
    B.setInsertPoint(Use);
    B.call(Obs, {B.udiv(Ctx.getInt(2, 1), K)});
    B.br(Exit);
    B.setInsertPoint(Exit);
    B.retVoid();
  }
  // tgt: if (k != 0) { t = 1 / k; if (c) observe(t); }
  Function *Tgt = fn("tgt", Ctx.voidTy(), {I2, I1});
  {
    BasicBlock *Entry = Tgt->addBlock("entry");
    BasicBlock *NonZero = Tgt->addBlock("nonzero");
    BasicBlock *Use = Tgt->addBlock("use");
    BasicBlock *Exit = Tgt->addBlock("exit");
    IRBuilder B(Ctx, Entry);
    Value *K = Tgt->arg(0);
    B.condBr(B.icmp(ICmpPred::NE, K, Ctx.getInt(2, 0)), NonZero, Exit);
    B.setInsertPoint(NonZero);
    Value *T = B.udiv(Ctx.getInt(2, 1), K);
    B.condBr(Tgt->arg(1), Use, Exit);
    B.setInsertPoint(Use);
    B.call(Obs, {T});
    B.br(Exit);
    B.setInsertPoint(Exit);
    B.retVoid();
  }

  // Legacy: k = undef can pass the check yet divide by zero (PR21412).
  TVResult R = check(Src, Tgt, LegacyUnswitch);
  EXPECT_TRUE(R.invalid()) << R.Message;

  // Proposed: k = poison makes the *source* branch UB, so anything goes;
  // concrete k behaves identically. The hoist is sound again.
  R = check(Src, Tgt, Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;
}

//===----------------------------------------------------------------------===//
// Section 3.3: loop unswitching vs GVN demand conflicting branch-on-poison
// rules. We reproduce both directions.
//===----------------------------------------------------------------------===//

/// src: if (c) { if (c2) observe(1) else observe(2) }
Function *buildUnswitchSrc(IRContext &Ctx, Module &M, Function *Obs,
                           const std::string &Name) {
  auto *I1 = Ctx.boolTy();
  Function *F = M.createFunction(
      Name, Ctx.types().fnTy(Ctx.voidTy(), {I1, I1}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Body = F->addBlock("body");
  BasicBlock *Foo = F->addBlock("foo");
  BasicBlock *Bar = F->addBlock("bar");
  BasicBlock *Exit = F->addBlock("exit");
  IRBuilder B(Ctx, Entry);
  B.condBr(F->arg(0), Body, Exit);
  B.setInsertPoint(Body);
  B.condBr(F->arg(1), Foo, Bar);
  B.setInsertPoint(Foo);
  B.call(Obs, {Ctx.getInt(2, 1)});
  B.br(Exit);
  B.setInsertPoint(Bar);
  B.call(Obs, {Ctx.getInt(2, 2)});
  B.br(Exit);
  B.setInsertPoint(Exit);
  B.retVoid();
  return F;
}

/// tgt: cond = maybe-freeze(c2); if (cond) { if (c) observe(1) }
///      else { if (c) observe(2) }
Function *buildUnswitchTgt(IRContext &Ctx, Module &M, Function *Obs,
                           const std::string &Name, bool Freeze) {
  auto *I1 = Ctx.boolTy();
  Function *F = M.createFunction(
      Name, Ctx.types().fnTy(Ctx.voidTy(), {I1, I1}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *TrueSide = F->addBlock("true.side");
  BasicBlock *Foo = F->addBlock("foo");
  BasicBlock *FalseSide = F->addBlock("false.side");
  BasicBlock *Bar = F->addBlock("bar");
  BasicBlock *Exit = F->addBlock("exit");
  IRBuilder B(Ctx, Entry);
  Value *C2 = F->arg(1);
  if (Freeze)
    C2 = B.freeze(C2);
  B.condBr(C2, TrueSide, FalseSide);
  B.setInsertPoint(TrueSide);
  B.condBr(F->arg(0), Foo, Exit);
  B.setInsertPoint(Foo);
  B.call(Obs, {Ctx.getInt(2, 1)});
  B.br(Exit);
  B.setInsertPoint(FalseSide);
  B.condBr(F->arg(0), Bar, Exit);
  B.setInsertPoint(Bar);
  B.call(Obs, {Ctx.getInt(2, 2)});
  B.br(Exit);
  B.setInsertPoint(Exit);
  B.retVoid();
  return F;
}

TEST_F(TVTest, LoopUnswitchingNeedsNondetBranchesOrFreeze) {
  Function *Obs = M.createFunction(
      "observe", Ctx.types().fnTy(Ctx.voidTy(), {Ctx.intTy(2)}));
  Function *Src = buildUnswitchSrc(Ctx, M, Obs, "src");
  Function *Tgt = buildUnswitchTgt(Ctx, M, Obs, "tgt", /*Freeze=*/false);
  Function *TgtFrozen =
      buildUnswitchTgt(Ctx, M, Obs, "tgt_frozen", /*Freeze=*/true);

  // Under branch-on-poison-is-UB, unswitching without freeze introduces UB
  // when c is false and c2 is poison.
  TVResult R = check(Src, Tgt, Proposed);
  EXPECT_TRUE(R.invalid()) << R.Message;

  // Under the nondet rule that unswitching assumed, it validates.
  R = check(Src, Tgt, LegacyUnswitch);
  EXPECT_TRUE(R.valid()) << R.Message;

  // The paper's fix: freeze the hoisted condition (Section 5.1).
  R = check(Src, TgtFrozen, Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;
}

TEST_F(TVTest, GVNNeedsBranchOnPoisonUB) {
  // src: t = x + 1; if (t == y) observe(t)
  // tgt: t = x + 1; if (t == y) observe(y)   [GVN replaced t by y]
  auto *I2 = Ctx.intTy(2);
  Function *Obs =
      M.createFunction("observe", Ctx.types().fnTy(Ctx.voidTy(), {I2}));
  auto Make = [&](const std::string &Name, bool PassY) {
    Function *F = M.createFunction(
        Name, Ctx.types().fnTy(Ctx.voidTy(), {I2, I2}));
    BasicBlock *Entry = F->addBlock("entry");
    BasicBlock *Then = F->addBlock("then");
    BasicBlock *Exit = F->addBlock("exit");
    IRBuilder B(Ctx, Entry);
    Value *T = B.addNSW(F->arg(0), Ctx.getInt(2, 1), "t");
    B.condBr(B.icmp(ICmpPred::EQ, T, F->arg(1)), Then, Exit);
    B.setInsertPoint(Then);
    B.call(Obs, {PassY ? F->arg(1) : T});
    B.br(Exit);
    B.setInsertPoint(Exit);
    B.retVoid();
    return F;
  };
  Function *Src = Make("src", false);
  Function *Tgt = Make("tgt", true);

  // Proposed rule (branch on poison is UB): y poison means the source
  // already executed UB at the branch, so GVN is fine.
  TVResult R = check(Src, Tgt, Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;

  // Loop unswitching's nondet rule breaks GVN: the source can pass a normal
  // value while the target passes poison (Section 3.3's conflict).
  R = check(Src, Tgt, LegacyUnswitch);
  EXPECT_TRUE(R.invalid()) << R.Message;
}

//===----------------------------------------------------------------------===//
// Section 3.4: the select semantics tensions.
//===----------------------------------------------------------------------===//

TEST_F(TVTest, SimplifyCFGPhiToSelect) {
  // src: br c ? merge(a) : merge(b); merge: x = phi [a], [b]; ret x
  // tgt: x = select c, a, b; ret x
  auto *I2 = Ctx.intTy(2);
  auto *I1 = Ctx.boolTy();
  Function *Src = fn("src", I2, {I1, I2, I2});
  {
    BasicBlock *Entry = Src->addBlock("entry");
    BasicBlock *T = Src->addBlock("t");
    BasicBlock *F2 = Src->addBlock("f");
    BasicBlock *Merge = Src->addBlock("merge");
    IRBuilder B(Ctx, Entry);
    B.condBr(Src->arg(0), T, F2);
    B.setInsertPoint(T);
    B.br(Merge);
    B.setInsertPoint(F2);
    B.br(Merge);
    B.setInsertPoint(Merge);
    PhiNode *P = B.phi(I2);
    P->addIncoming(Src->arg(1), T);
    P->addIncoming(Src->arg(2), F2);
    B.ret(P);
  }
  Function *Tgt = fn("tgt", I2, {I1, I2, I2});
  {
    IRBuilder B(Ctx, Tgt->addBlock("entry"));
    B.ret(B.select(Tgt->arg(0), Tgt->arg(1), Tgt->arg(2)));
  }

  // Proposed semantics: select on poison yields poison, which refines the
  // source's branch-on-poison UB; a poison unchosen arm is ignored exactly
  // like the phi. Valid.
  TVResult R = check(Src, Tgt, Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;

  // If select-on-poison were UB *and* branches were nondet, the transform
  // would introduce UB.
  SemanticsConfig Mixed = LegacyUnswitch;
  Mixed.SelectOnPoisonCond = SelectPoisonCondRule::UB;
  R = check(Src, Tgt, Mixed);
  EXPECT_TRUE(R.invalid()) << R.Message;
}

TEST_F(TVTest, SelectToBranchNeedsFreeze) {
  // The reverse transformation (Section 5.2): select -> branches, with the
  // condition frozen.
  auto *I2 = Ctx.intTy(2);
  auto *I1 = Ctx.boolTy();
  Function *Src = fn("src", I2, {I1, I2, I2});
  {
    IRBuilder B(Ctx, Src->addBlock("entry"));
    B.ret(B.select(Src->arg(0), Src->arg(1), Src->arg(2)));
  }
  auto MakeTgt = [&](const std::string &Name, bool Freeze) {
    Function *F = fn(Name, I2, {I1, I2, I2});
    BasicBlock *Entry = F->addBlock("entry");
    BasicBlock *T = F->addBlock("t");
    BasicBlock *F2 = F->addBlock("f");
    BasicBlock *Merge = F->addBlock("merge");
    IRBuilder B(Ctx, Entry);
    Value *C = F->arg(0);
    if (Freeze)
      C = B.freeze(C);
    B.condBr(C, T, F2);
    B.setInsertPoint(T);
    B.br(Merge);
    B.setInsertPoint(F2);
    B.br(Merge);
    B.setInsertPoint(Merge);
    PhiNode *P = B.phi(I2);
    P->addIncoming(F->arg(1), T);
    P->addIncoming(F->arg(2), F2);
    B.ret(P);
    return F;
  };

  // Without freeze: branching on the poison condition is new UB.
  TVResult R = check(Src, MakeTgt("tgt_raw", false), Proposed);
  EXPECT_TRUE(R.invalid()) << R.Message;
  // With freeze: valid (Section 5.2).
  R = check(Src, MakeTgt("tgt_frozen", true), Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;
}

TEST_F(TVTest, UDivToSelectRequiresNonUBSelect) {
  // Section 3.4: udiv %a, C -> (a < C) ? 0 : 1 must be valid; it is not if
  // select-on-poison is UB.
  auto *I3 = Ctx.intTy(3);
  const uint64_t C = 5; // Any constant with the top bit set (C >= 4 on i3).
  Function *Src = fn("src", I3, {I3});
  {
    IRBuilder B(Ctx, Src->addBlock("entry"));
    B.ret(B.udiv(Src->arg(0), Ctx.getInt(3, C)));
  }
  Function *Tgt = fn("tgt", I3, {I3});
  {
    IRBuilder B(Ctx, Tgt->addBlock("entry"));
    Value *Cmp = B.icmp(ICmpPred::ULT, Tgt->arg(0), Ctx.getInt(3, C));
    B.ret(B.select(Cmp, Ctx.getInt(3, 0), Ctx.getInt(3, 1)));
  }

  // Proposed semantics: valid (poison in -> poison out on both sides).
  TVResult R = check(Src, Tgt, Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;

  // Select-on-poison-is-UB (the GVN-friendly reading): invalid, because the
  // source just returns poison while the target is UB.
  R = check(Src, Tgt, LegacyGVN);
  EXPECT_TRUE(R.invalid()) << R.Message;
}

TEST_F(TVTest, SelectTrueArmToOrConflictsWithChosenArmRule) {
  // Section 3.4: select %c, true, %x -> or %c, %x. Sound only when poison
  // in either arm poisons the select (the arithmetic reading); unsound
  // under the proposed phi-like rule.
  auto *I1 = Ctx.boolTy();
  Function *Src = fn("src", I1, {I1, I1});
  {
    IRBuilder B(Ctx, Src->addBlock("entry"));
    B.ret(B.select(Src->arg(0), Ctx.getTrue(), Src->arg(1)));
  }
  Function *Tgt = fn("tgt", I1, {I1, I1});
  {
    IRBuilder B(Ctx, Tgt->addBlock("entry"));
    B.ret(B.or_(Tgt->arg(0), Tgt->arg(1)));
  }

  // Proposed: c = true, x = poison gives select = true but or = poison.
  TVResult R = check(Src, Tgt, Proposed);
  EXPECT_TRUE(R.invalid()) << R.Message;

  // The full "select is arithmetic" reading (any poison input - condition
  // or either arm - poisons the result): both sides agree; valid.
  SemanticsConfig LangRef = SemanticsConfig::legacyLangRefSelect();
  LangRef.UndefIsPoison = true; // Isolate the select rule from undef.
  LangRef.SelectOnPoisonCond = SelectPoisonCondRule::Poison;
  R = check(Src, Tgt, LangRef);
  EXPECT_TRUE(R.valid()) << R.Message;

  // Under the proposed semantics the fix freezes the not-always-chosen
  // value operand %x. Freezing the *condition* instead (a literal reading
  // of the paper's prose) does not help: %c = true with %x = poison still
  // poisons the or.
  Function *TgtFrX = fn("tgt_frx", I1, {I1, I1});
  {
    IRBuilder B(Ctx, TgtFrX->addBlock("entry"));
    B.ret(B.or_(TgtFrX->arg(0), B.freeze(TgtFrX->arg(1))));
  }
  R = check(Src, TgtFrX, Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;

  Function *TgtFrC = fn("tgt_frc", I1, {I1, I1});
  {
    IRBuilder B(Ctx, TgtFrC->addBlock("entry"));
    B.ret(B.or_(B.freeze(TgtFrC->arg(0)), TgtFrC->arg(1)));
  }
  R = check(Src, TgtFrC, Proposed);
  EXPECT_TRUE(R.invalid()) << R.Message;
}

TEST_F(TVTest, SelectWithUndefArmIsNotTheOtherArm) {
  // Section 3.4's last pitfall: select %c, %x, undef -> %x is wrong
  // because %x may be poison and poison is stronger than undef (PR31633).
  auto *I2 = Ctx.intTy(2);
  auto *I1 = Ctx.boolTy();
  Function *Src = fn("src", I2, {I1, I2});
  {
    IRBuilder B(Ctx, Src->addBlock("entry"));
    B.ret(B.select(Src->arg(0), Src->arg(1), Ctx.getUndef(I2)));
  }
  Function *Tgt = fn("tgt", I2, {I1, I2});
  {
    IRBuilder B(Ctx, Tgt->addBlock("entry"));
    B.ret(Tgt->arg(1));
  }
  TVResult R = check(Src, Tgt, LegacyUnswitch);
  EXPECT_TRUE(R.invalid()) << R.Message;
}

//===----------------------------------------------------------------------===//
// Section 5.5, pitfall 1: freeze must not be duplicated.
//===----------------------------------------------------------------------===//

TEST_F(TVTest, FreezeDuplicationIsUnsound) {
  auto *I2 = Ctx.intTy(2);
  Function *Obs =
      M.createFunction("observe", Ctx.types().fnTy(Ctx.voidTy(), {I2}));
  Function *Src = fn("src", Ctx.voidTy(), {I2});
  {
    IRBuilder B(Ctx, Src->addBlock("entry"));
    Value *Y = B.freeze(Src->arg(0));
    B.call(Obs, {Y});
    B.call(Obs, {Y});
    B.retVoid();
  }
  Function *Tgt = fn("tgt", Ctx.voidTy(), {I2});
  {
    IRBuilder B(Ctx, Tgt->addBlock("entry"));
    B.call(Obs, {B.freeze(Tgt->arg(0))});
    B.call(Obs, {B.freeze(Tgt->arg(0))});
    B.retVoid();
  }
  // Source observes the same value twice; target may observe two different
  // values when the argument is poison.
  TVResult R = check(Src, Tgt, Proposed);
  EXPECT_TRUE(R.invalid()) << R.Message;
}

TEST_F(TVTest, FreezeFoldings) {
  auto *I2 = Ctx.intTy(2);
  // freeze(freeze x) -> freeze x.
  Function *Src = fn("src", I2, {I2});
  {
    IRBuilder B(Ctx, Src->addBlock("entry"));
    B.ret(B.freeze(B.freeze(Src->arg(0))));
  }
  Function *Tgt = fn("tgt", I2, {I2});
  {
    IRBuilder B(Ctx, Tgt->addBlock("entry"));
    B.ret(B.freeze(Tgt->arg(0)));
  }
  TVResult R = check(Src, Tgt, Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;

  // freeze(const) -> const.
  Function *Src2 = fn("src2", I2, {});
  {
    IRBuilder B(Ctx, Src2->addBlock("entry"));
    B.ret(B.freeze(Ctx.getInt(2, 3)));
  }
  Function *Tgt2 = fn("tgt2", I2, {});
  {
    IRBuilder B(Ctx, Tgt2->addBlock("entry"));
    B.ret(Ctx.getInt(2, 3));
  }
  R = check(Src2, Tgt2, Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;

  // x -> freeze x is always a refinement (dropping poison possibilities).
  Function *Src3 = fn("src3", I2, {I2});
  {
    IRBuilder B(Ctx, Src3->addBlock("entry"));
    B.ret(Src3->arg(0));
  }
  Function *Tgt3 = fn("tgt3", I2, {I2});
  {
    IRBuilder B(Ctx, Tgt3->addBlock("entry"));
    B.ret(B.freeze(Tgt3->arg(0)));
  }
  R = check(Src3, Tgt3, Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;

  // The reverse, freeze x -> x, is NOT a refinement.
  R = check(Tgt3, Src3, Proposed);
  EXPECT_TRUE(R.invalid()) << R.Message;
}

//===----------------------------------------------------------------------===//
// Refinement machinery sanity.
//===----------------------------------------------------------------------===//

TEST_F(TVTest, IdentityIsValidAndConstantsCompare) {
  auto *I3 = Ctx.intTy(3);
  Function *Src = fn("src", I3, {I3});
  {
    IRBuilder B(Ctx, Src->addBlock("entry"));
    B.ret(B.add(Src->arg(0), Ctx.getInt(3, 1)));
  }
  TVResult R = check(Src, Src, Proposed);
  EXPECT_TRUE(R.valid());
  EXPECT_GT(R.InputsChecked, 0u);

  Function *Wrong = fn("wrong", I3, {I3});
  {
    IRBuilder B(Ctx, Wrong->addBlock("entry"));
    B.ret(B.add(Wrong->arg(0), Ctx.getInt(3, 2)));
  }
  R = check(Src, Wrong, Proposed);
  EXPECT_TRUE(R.invalid());
}

//===----------------------------------------------------------------------===//
// Campaign engine: sharded parallel validation must agree, bit for bit,
// with the serial checker.
//===----------------------------------------------------------------------===//

/// A small space on which the legacy pipeline demonstrably miscompiles:
/// icmp+select over i1 with three arguments, where the legacy
/// `select c, true/false, x -> or/and` combines drop poison protection.
tv::CampaignOptions miscompilingCampaign() {
  tv::CampaignOptions Opts;
  Opts.Source = tv::CampaignSource::Exhaustive;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.Width = 1;
  Opts.Enum.NumArgs = 3;
  Opts.Enum.Opcodes = {}; // icmp/select/freeze only.
  Opts.Pipeline = PipelineMode::Legacy;
  Opts.TV.CompareMemory = false;
  Opts.ShardSize = 16;
  return Opts;
}

TEST_F(TVTest, CampaignSerialIsByteIdenticalToDirectChecker) {
  // The pre-engine serial checker: enumerate, optimize, checkRefinement,
  // one function at a time in one module (exactly bench/TVBench.cpp's loop).
  tv::CampaignOptions Opts = miscompilingCampaign();
  Opts.KeepAllCounterexamples = true;

  std::vector<std::pair<uint64_t, std::string>> DirectFailures;
  uint64_t DirectFunctions = 0, DirectValid = 0;
  {
    IRContext Ctx2;
    Module M2(Ctx2, "direct");
    uint64_t Index = 0;
    fuzz::enumerateFunctions(M2, Opts.Enum, [&](Function &F) {
      Function *Orig = cloneFunction(F, M2, "orig");
      PassManager PM(false);
      buildStandardPipeline(PM, Opts.Pipeline);
      PM.run(F);
      TVResult TR = checkRefinement(*Orig, F, Opts.Semantics, Opts.TV);
      M2.eraseFunction(Orig);
      ++DirectFunctions;
      if (TR.valid())
        ++DirectValid;
      else
        DirectFailures.push_back({Index, TR.Message});
      ++Index;
      return true;
    });
  }
  ASSERT_GT(DirectFailures.size(), 0u)
      << "space no longer exercises the legacy miscompiles";

  Opts.Jobs = 1;
  tv::CampaignResult R = tv::runCampaign(Opts);
  EXPECT_EQ(R.Functions, DirectFunctions);
  EXPECT_EQ(R.Valid, DirectValid);
  ASSERT_EQ(R.Counterexamples.size(), DirectFailures.size());
  for (size_t I = 0; I != DirectFailures.size(); ++I) {
    EXPECT_EQ(R.Counterexamples[I].Index, DirectFailures[I].first);
    // Byte-identical diagnostics: the engine's print/parse shard hand-off
    // must not perturb the checker's output.
    EXPECT_EQ(R.Counterexamples[I].Message, DirectFailures[I].second);
  }
}

TEST_F(TVTest, CampaignParallelReportsIdenticalCounterexampleSet) {
  tv::CampaignOptions Opts = miscompilingCampaign();
  Opts.Jobs = 1;
  tv::CampaignResult Serial = tv::runCampaign(Opts);
  Opts.Jobs = 4;
  tv::CampaignResult Parallel = tv::runCampaign(Opts);

  ASSERT_GT(Serial.Invalid, 0u);
  EXPECT_GT(Serial.DuplicateFailures, 0u); // Dedup did real work.
  EXPECT_EQ(Serial.Invalid, Parallel.Invalid);
  EXPECT_EQ(Serial.DistinctFailures, Parallel.DistinctFailures);
  ASSERT_EQ(Serial.Counterexamples.size(), Parallel.Counterexamples.size());
  for (size_t I = 0; I != Serial.Counterexamples.size(); ++I) {
    EXPECT_EQ(Serial.Counterexamples[I].Index,
              Parallel.Counterexamples[I].Index);
    EXPECT_EQ(Serial.Counterexamples[I].Message,
              Parallel.Counterexamples[I].Message);
  }
  // The full canonical report — counts, dedup stats, witnesses, function
  // bodies — must match byte for byte.
  EXPECT_EQ(Serial.report(), Parallel.report());
}

TEST_F(TVTest, CampaignRandomSourceIsDeterministicAcrossJobsAndRuns) {
  tv::CampaignOptions Opts;
  Opts.Source = tv::CampaignSource::Random;
  Opts.Random.Seed = 42;
  Opts.Random.Width = 8;
  Opts.Random.Statements = 8;
  Opts.Random.Loops = 1;
  Opts.RandomFunctions = 24;
  Opts.ShardSize = 4;
  Opts.TV.CompareMemory = false;

  Opts.Jobs = 1;
  tv::CampaignResult A = tv::runCampaign(Opts);
  Opts.Jobs = 3;
  tv::CampaignResult B = tv::runCampaign(Opts);
  EXPECT_EQ(A.Functions, 24u);
  EXPECT_EQ(A.report(), B.report());

  // Same seed, same campaign — a reproducibility contract across runs too.
  tv::CampaignResult C = tv::runCampaign(Opts);
  EXPECT_EQ(B.report(), C.report());
}

//===----------------------------------------------------------------------===//
// End-to-end mode: the machine (codegen + regalloc + simulator) must refine
// the IR semantics. The legacy branchless select lowering assumes the
// condition register holds 0 or 1, which a poison condition violates.
//===----------------------------------------------------------------------===//

TEST_F(TVTest, EndToEndSelectOnPoisonCondDivergesUnderLegacy) {
  auto *I2 = Ctx.intTy(2);
  Function *F = fn("sel", I2, {I2, I2});
  {
    IRBuilder B(Ctx, F->addBlock("entry"));
    B.ret(B.select(Ctx.getPoison(Ctx.boolTy()), F->arg(0), F->arg(1)));
  }
  ASSERT_TRUE(verifyFunction(*F));

  // Legacy: select on poison nondeterministically picks an arm, but the
  // branchless blend mixes bits of both arms when the condition register
  // holds garbage — the machine returns neither arm. The divergence is in
  // instruction selection, so the vreg replay fails too.
  tv::E2EResult Legacy = tv::checkEndToEnd(*F, LegacyUnswitch);
  EXPECT_TRUE(Legacy.TV.invalid()) << Legacy.TV.Message;
  EXPECT_EQ(Legacy.BlamedStage, "isel") << Legacy.TV.Message;

  // Proposed: the select itself is poison, which any machine value refines.
  tv::E2EResult Prop = tv::checkEndToEnd(*F, Proposed);
  EXPECT_TRUE(Prop.TV.valid()) << Prop.TV.Message;
}

tv::CampaignOptions endToEndCampaign() {
  tv::CampaignOptions Opts;
  Opts.Source = tv::CampaignSource::Exhaustive;
  Opts.Kind = tv::CampaignKind::EndToEnd;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.Width = 2;
  Opts.Enum.NumArgs = 2;
  Opts.Enum.Opcodes = {}; // icmp/select/freeze only.
  Opts.MaxFunctions = 1500;
  Opts.TV.CompareMemory = false;
  Opts.ShardSize = 64;
  return Opts;
}

TEST_F(TVTest, EndToEndCampaignProposedBackendIsClean) {
  tv::CampaignOptions Opts = endToEndCampaign();
  Opts.Jobs = 4;
  tv::CampaignResult R = tv::runCampaign(Opts);
  EXPECT_GT(R.Functions, 0u);
  EXPECT_EQ(R.Invalid, 0u) << R.report();
  EXPECT_EQ(R.Inconclusive, 0u) << R.report();
}

TEST_F(TVTest, EndToEndCampaignBlamesIselForLegacySelects) {
  // Widening the space with literal `i1 poison` select conditions puts the
  // legacy lowering bug inside the enumerated programs; every resulting
  // counterexample must carry a backend-stage blame, and the report must be
  // byte-identical at any parallelism.
  tv::CampaignOptions Opts = endToEndCampaign();
  Opts.Enum.WithPoisonCond = true;
  Opts.Semantics = LegacyUnswitch;

  Opts.Jobs = 1;
  tv::CampaignResult Serial = tv::runCampaign(Opts);
  ASSERT_GT(Serial.Invalid, 0u) << Serial.report();
  for (const tv::Counterexample &C : Serial.Counterexamples) {
    if (C.Inconclusive)
      continue;
    EXPECT_EQ(C.BlamedPass, "isel") << C.Message;
  }

  Opts.Jobs = 4;
  tv::CampaignResult Parallel = tv::runCampaign(Opts);
  EXPECT_EQ(Serial.report(), Parallel.report());
}

//===----------------------------------------------------------------------===//
// MaxInputs truncation must never starve an argument of its special lanes.
//===----------------------------------------------------------------------===//

TEST_F(TVTest, TruncatedInputEnumerationKeepsPoisonLanes) {
  auto *I8 = Ctx.intTy(8);
  // With two i8 arguments the concrete boundary domain alone exceeds a tiny
  // MaxInputs cap, so a naive resize would drop every tuple containing a
  // special lane — and only a poison argument distinguishes these two.
  Function *Src = fn("src", I8, {I8, I8});
  {
    IRBuilder B(Ctx, Src->addBlock("entry"));
    B.ret(B.freeze(Src->arg(0)));
  }
  Function *Tgt = fn("tgt", I8, {I8, I8});
  {
    IRBuilder B(Ctx, Tgt->addBlock("entry"));
    B.ret(Tgt->arg(0));
  }
  TVOptions Opts;
  Opts.MaxInputs = 8;
  TVResult R = checkRefinement(*Src, *Tgt, Proposed, Opts);
  EXPECT_TRUE(R.invalid()) << R.Message;

  // The guarantee, stated directly: under the cap every argument still owns
  // at least one tuple where it is poison.
  std::vector<std::vector<sem::Value>> Tuples;
  ASSERT_TRUE(tv::enumerateInputTuples(*Src, Proposed, Opts, Tuples));
  EXPECT_LE(Tuples.size(), Opts.MaxInputs + 2);
  for (unsigned A = 0; A != 2; ++A) {
    bool Found = false;
    for (const std::vector<sem::Value> &T : Tuples)
      Found |= T[A].isScalar() && T[A].scalar().isPoison();
    EXPECT_TRUE(Found) << "argument " << A << " lost its poison lane";
  }
}

TEST_F(TVTest, CounterexampleCacheDeduplicatesAcrossThreads) {
  tv::CounterexampleCache Cache(64);
  uint64_t FP1 = tv::fingerprintFailure("input (poison): mismatch");
  uint64_t FP2 = tv::fingerprintFailure("input (undef): mismatch");
  EXPECT_NE(FP1, FP2);
  EXPECT_TRUE(Cache.record(FP1, 10));
  EXPECT_FALSE(Cache.record(FP1, 5)); // Same class, lower witness.
  EXPECT_FALSE(Cache.record(FP1, 20));
  EXPECT_TRUE(Cache.record(FP2, 7));
  EXPECT_EQ(Cache.minIndex(FP1), 5u);
  EXPECT_EQ(Cache.minIndex(FP2), 7u);
  EXPECT_EQ(Cache.distinct(), 2u);
  EXPECT_EQ(Cache.minIndex(tv::fingerprintFailure("absent")), ~uint64_t(0));
}

TEST_F(TVTest, MemoryIsObservable) {
  // src stores 1 to a global; tgt stores 2. Must be caught via the final
  // memory snapshot even though neither returns a value.
  auto *I8 = Ctx.intTy(8);
  GlobalVariable *G = Ctx.getGlobal("g", I8, 1);
  auto Make = [&](const std::string &Name, uint64_t V) {
    Function *F = fn(Name, Ctx.voidTy(), {});
    IRBuilder B(Ctx, F->addBlock("entry"));
    B.store(Ctx.getInt(8, V), G);
    B.retVoid();
    return F;
  };
  TVResult R = check(Make("src", 1), Make("tgt", 1 + 1), Proposed);
  EXPECT_TRUE(R.invalid()) << R.Message;
  R = check(Make("src2", 3), Make("tgt2", 3), Proposed);
  EXPECT_TRUE(R.valid()) << R.Message;
}

TEST_F(TVTest, InitialMemorySweepCatchesDeletedUndefStore) {
  // dse<legacy>'s folklore rule deletes `store undef` as a no-op. Over
  // uninitialized memory that IS a refinement (the target's Uninit bytes
  // refine the source's Undef), so the fixed-memory check accepts it; only
  // sweeping initial memory contents — in particular all-poison — exposes
  // the resurrection of whatever the bytes held before.
  //
  // This pair is also the MemLayout regression: the target references no
  // global at all, so without pinning the window to the SOURCE's globals
  // the final-memory snapshots would have different sizes and the valid
  // fixed-memory verdict below would come out spuriously invalid.
  auto *I8 = Ctx.intTy(8);
  GlobalVariable *G = Ctx.getGlobal("g", I8, 1);
  Function *Src = fn("src", Ctx.voidTy(), {});
  {
    IRBuilder B(Ctx, Src->addBlock("entry"));
    B.store(Ctx.getUndef(I8), G);
    B.retVoid();
  }
  Function *Tgt = fn("tgt", Ctx.voidTy(), {});
  {
    IRBuilder B(Ctx, Tgt->addBlock("entry"));
    B.retVoid();
  }
  ASSERT_TRUE(verifyFunction(*Src));
  ASSERT_TRUE(verifyFunction(*Tgt));

  TVOptions Opts;
  Opts.CompareMemory = true;
  TVResult R = checkRefinement(*Src, *Tgt, LegacyGVN, Opts);
  EXPECT_TRUE(R.valid()) << R.Message;

  Opts.EnumerateMemory = true;
  R = checkRefinement(*Src, *Tgt, LegacyGVN, Opts);
  EXPECT_TRUE(R.invalid()) << R.Message;
  // The counterexample names the initial-memory configuration it needed.
  EXPECT_NE(R.Message.find("initmem="), std::string::npos) << R.Message;
}

TEST_F(TVTest, FixedInitialMemoryIsRespected) {
  // InitialMem pins every execution's starting contents: a function that
  // just loads the global must return exactly those bytes.
  auto *I8 = Ctx.intTy(8);
  GlobalVariable *G = Ctx.getGlobal("g", I8, 1);
  auto MakeLoad = [&](const std::string &Name) {
    Function *F = fn(Name, I8, {});
    IRBuilder B(Ctx, F->addBlock("entry"));
    B.ret(B.load(G, "v"));
    return F;
  };
  Function *Src = MakeLoad("src");
  Function *TgtConst = fn("tgtc", I8, {});
  {
    IRBuilder B(Ctx, TgtConst->addBlock("entry"));
    B.ret(Ctx.getInt(8, 0x5a));
  }
  ASSERT_TRUE(verifyFunction(*Src));
  ASSERT_TRUE(verifyFunction(*TgtConst));

  std::vector<sem::MemBit> Bits(8, sem::MemBit::Zero);
  for (unsigned I : {1u, 3u, 4u, 6u}) // 0x5a, LSB first
    Bits[I] = sem::MemBit::One;
  TVOptions Opts;
  Opts.CompareMemory = true;
  Opts.InitialMem = &Bits;
  TVResult R = checkRefinement(*Src, *TgtConst, Proposed, Opts);
  EXPECT_TRUE(R.valid()) << R.Message;

  // Any other constant is refuted under the same initial memory.
  Function *TgtWrong = fn("tgtw", I8, {});
  {
    IRBuilder B(Ctx, TgtWrong->addBlock("entry"));
    B.ret(Ctx.getInt(8, 0x5b));
  }
  ASSERT_TRUE(verifyFunction(*TgtWrong));
  R = checkRefinement(*Src, *TgtWrong, Proposed, Opts);
  EXPECT_TRUE(R.invalid()) << R.Message;
}

TEST_F(TVTest, MemoryCampaignLegacyDSEFailsProposedCleanDeterministic) {
  // The issue's acceptance shape as a unit test: an exhaustive memory
  // campaign over 1-byte programs with undef/poison stores. dse<legacy>
  // miscompiles (every counterexample blames it, and at least one needs a
  // non-default initial memory), the proposed dse over the identical space
  // is clean, and the report is byte-identical at any parallelism.
  tv::CampaignOptions Opts;
  Opts.Source = tv::CampaignSource::Exhaustive;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.Width = 2;
  Opts.Enum.NumArgs = 1;
  Opts.Enum.Opcodes = {};
  Opts.Enum.WithSelect = false;
  Opts.Enum.WithFreeze = false;
  Opts.Enum.WithPoison = true;
  Opts.Enum.WithUndef = true;
  Opts.Enum.WithMemory = true;
  Opts.Enum.MemBytes = 1;
  Opts.Passes = "dse";
  Opts.Pipeline = PipelineMode::Legacy;
  Opts.Semantics = LegacyGVN;
  Opts.TV.CompareMemory = true;
  Opts.TV.EnumerateMemory = true;
  Opts.ShardSize = 16;

  Opts.Jobs = 1;
  tv::CampaignResult Serial = tv::runCampaign(Opts);
  EXPECT_GT(Serial.Functions, 100u);
  EXPECT_GT(Serial.Invalid, 0u);
  EXPECT_EQ(Serial.Inconclusive, 0u);
  EXPECT_GT(Serial.MemFunctions, 0u); // the sweep actually ran
  EXPECT_GT(Serial.MemConfigs, Serial.MemFunctions);
  ASSERT_GT(Serial.Counterexamples.size(), 0u);
  bool SawInitMemWitness = false;
  for (const tv::Counterexample &CE : Serial.Counterexamples) {
    EXPECT_EQ(CE.BlamedPass, "dse<legacy>") << CE.Message;
    SawInitMemWitness |= CE.Message.find("initmem=") != std::string::npos;
  }
  // At least one failure (e.g. a lone deleted `store undef`) reproduces
  // only under a swept initial memory, not over Uninit.
  EXPECT_TRUE(SawInitMemWitness);

  Opts.Jobs = 2;
  tv::CampaignResult Parallel = tv::runCampaign(Opts);
  EXPECT_EQ(Serial.report(), Parallel.report());

  Opts.Jobs = 1;
  Opts.Pipeline = PipelineMode::Proposed;
  Opts.Semantics = Proposed;
  tv::CampaignResult Clean = tv::runCampaign(Opts);
  EXPECT_GT(Clean.Functions, 100u);
  EXPECT_EQ(Clean.Invalid, 0u);
  EXPECT_EQ(Clean.Inconclusive, 0u);
}

} // namespace
