//===- AnalysisTest.cpp - Dominators and loop info tests ----------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Constants.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace frost;

namespace {

struct AnalysisTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "test"};

  /// entry -> (a | b) -> join -> exit diamond.
  Function *makeDiamond() {
    auto *I32 = Ctx.intTy(32);
    Function *F = M.createFunction("diamond", Ctx.types().fnTy(I32, {I32}));
    BasicBlock *Entry = F->addBlock("entry");
    BasicBlock *A = F->addBlock("a");
    BasicBlock *B2 = F->addBlock("b");
    BasicBlock *Join = F->addBlock("join");
    IRBuilder B(Ctx, Entry);
    Value *C = B.icmp(ICmpPred::EQ, F->arg(0), Ctx.getInt(32, 0));
    B.condBr(C, A, B2);
    B.setInsertPoint(A);
    B.br(Join);
    B.setInsertPoint(B2);
    B.br(Join);
    B.setInsertPoint(Join);
    B.ret(F->arg(0));
    return F;
  }

  /// entry -> head <-> body, head -> exit counted loop.
  Function *makeLoop() {
    auto *I32 = Ctx.intTy(32);
    Function *F = M.createFunction("loop", Ctx.types().fnTy(I32, {I32}));
    BasicBlock *Entry = F->addBlock("entry");
    BasicBlock *Head = F->addBlock("head");
    BasicBlock *Body = F->addBlock("body");
    BasicBlock *Exit = F->addBlock("exit");
    IRBuilder B(Ctx, Entry);
    B.br(Head);
    B.setInsertPoint(Head);
    PhiNode *I = B.phi(I32, "i");
    Value *C = B.icmp(ICmpPred::SLT, I, F->arg(0), "c");
    B.condBr(C, Body, Exit);
    B.setInsertPoint(Body);
    Value *I1 = B.addNSW(I, Ctx.getInt(32, 1), "i1");
    B.br(Head);
    I->addIncoming(Ctx.getInt(32, 0), Entry);
    I->addIncoming(I1, Body);
    B.setInsertPoint(Exit);
    B.ret(I);
    return F;
  }

  BasicBlock *block(Function *F, const std::string &Name) {
    for (BasicBlock *BB : *F)
      if (BB->getName() == Name)
        return BB;
    return nullptr;
  }
};

TEST_F(AnalysisTest, DiamondDominators) {
  Function *F = makeDiamond();
  ASSERT_TRUE(verifyFunction(*F));
  DominatorTree DT(*F);

  BasicBlock *Entry = block(F, "entry"), *A = block(F, "a"),
             *B2 = block(F, "b"), *Join = block(F, "join");
  EXPECT_EQ(DT.idom(Entry), nullptr);
  EXPECT_EQ(DT.idom(A), Entry);
  EXPECT_EQ(DT.idom(B2), Entry);
  EXPECT_EQ(DT.idom(Join), Entry);
  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(A, Join));
  EXPECT_TRUE(DT.dominates(A, A));
  EXPECT_EQ(DT.rpo().front(), Entry);
  EXPECT_EQ(DT.rpo().size(), 4u);
}

TEST_F(AnalysisTest, InstructionDominance) {
  Function *F = makeLoop();
  ASSERT_TRUE(verifyFunction(*F));
  DominatorTree DT(*F);
  BasicBlock *Head = block(F, "head"), *Body = block(F, "body");

  Instruction *Phi = Head->front();
  Instruction *Cmp = Phi->nextInst();
  Instruction *Inc = Body->front();
  // The phi dominates the cmp in the same block, and the body increment.
  EXPECT_TRUE(DT.dominates(Phi, Cmp, 0));
  EXPECT_TRUE(DT.dominates(Phi, Inc, 0));
  EXPECT_FALSE(DT.dominates(Cmp, Phi, 0));
  // The increment is used by the phi along the back edge: the use point is
  // the end of the body block, which the increment dominates.
  EXPECT_TRUE(DT.dominates(Inc, Phi, 2));
}

TEST_F(AnalysisTest, UnreachableBlocks) {
  Function *F = makeDiamond();
  BasicBlock *Dead = F->addBlock("dead");
  IRBuilder B(Ctx, Dead);
  B.br(block(F, "join"));
  // "dead" jumps into the diamond but nothing reaches it.
  DominatorTree DT(*F);
  EXPECT_FALSE(DT.isReachable(Dead));
  EXPECT_TRUE(DT.isReachable(block(F, "join")));
  // Everything "dominates" an unreachable block by convention.
  EXPECT_TRUE(DT.dominates(block(F, "join"), Dead));
  EXPECT_FALSE(DT.dominates(Dead, block(F, "join")));
}

TEST_F(AnalysisTest, SimpleLoopDetection) {
  Function *F = makeLoop();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);

  BasicBlock *Head = block(F, "head"), *Body = block(F, "body"),
             *Entry = block(F, "entry"), *Exit = block(F, "exit");
  ASSERT_EQ(LI.topLevel().size(), 1u);
  Loop *L = LI.topLevel().front();
  EXPECT_EQ(L->header(), Head);
  EXPECT_TRUE(L->contains(Body));
  EXPECT_FALSE(L->contains(Entry));
  EXPECT_EQ(L->preheader(), Entry);
  EXPECT_EQ(L->latches(), std::vector<BasicBlock *>{Body});
  EXPECT_EQ(L->exitBlocks(), std::vector<BasicBlock *>{Exit});
  EXPECT_EQ(LI.loopFor(Body), L);
  EXPECT_EQ(LI.loopFor(Entry), nullptr);
  EXPECT_EQ(L->depth(), 1u);
}

TEST_F(AnalysisTest, LoopInvariance) {
  Function *F = makeLoop();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  Loop *L = LI.topLevel().front();

  BasicBlock *Head = block(F, "head");
  Instruction *Phi = Head->front();
  EXPECT_TRUE(L->isLoopInvariant(F->arg(0)));
  EXPECT_TRUE(L->isLoopInvariant(Ctx.getInt(32, 1)));
  EXPECT_FALSE(L->isLoopInvariant(Phi));
}

TEST_F(AnalysisTest, NestedLoops) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("nest", Ctx.types().fnTy(I32, {I32}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *OuterH = F->addBlock("outer");
  BasicBlock *InnerH = F->addBlock("inner");
  BasicBlock *InnerL = F->addBlock("inner.latch");
  BasicBlock *OuterL = F->addBlock("outer.latch");
  BasicBlock *Exit = F->addBlock("exit");

  IRBuilder B(Ctx, Entry);
  B.br(OuterH);
  B.setInsertPoint(OuterH);
  PhiNode *I = B.phi(I32, "i");
  Value *CO = B.icmp(ICmpPred::SLT, I, F->arg(0), "co");
  B.condBr(CO, InnerH, Exit);
  B.setInsertPoint(InnerH);
  PhiNode *J = B.phi(I32, "j");
  Value *CI = B.icmp(ICmpPred::SLT, J, F->arg(0), "ci");
  B.condBr(CI, InnerL, OuterL);
  B.setInsertPoint(InnerL);
  Value *J1 = B.addNSW(J, Ctx.getInt(32, 1), "j1");
  B.br(InnerH);
  B.setInsertPoint(OuterL);
  Value *I1 = B.addNSW(I, Ctx.getInt(32, 1), "i1");
  B.br(OuterH);
  B.setInsertPoint(Exit);
  B.ret(I);
  I->addIncoming(Ctx.getInt(32, 0), Entry);
  I->addIncoming(I1, OuterL);
  J->addIncoming(Ctx.getInt(32, 0), OuterH);
  J->addIncoming(J1, InnerL);
  ASSERT_TRUE(verifyFunction(*F));

  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.topLevel().size(), 1u);
  Loop *Outer = LI.topLevel().front();
  ASSERT_EQ(Outer->subLoops().size(), 1u);
  Loop *Inner = Outer->subLoops().front();
  EXPECT_EQ(Inner->header(), InnerH);
  EXPECT_EQ(Inner->parent(), Outer);
  EXPECT_EQ(Inner->depth(), 2u);
  EXPECT_EQ(LI.loopFor(InnerL), Inner);
  EXPECT_EQ(LI.loopFor(OuterL), Outer);

  std::vector<Loop *> Ordered = LI.loopsInnermostFirst();
  ASSERT_EQ(Ordered.size(), 2u);
  EXPECT_EQ(Ordered.front(), Inner);
}

TEST_F(AnalysisTest, AliasDecompose) {
  auto *I8 = Ctx.intTy(8);
  GlobalVariable *G = Ctx.getGlobal("g", I8, 8);
  Function *F =
      M.createFunction("decomp", Ctx.types().fnTy(I8, {Ctx.intTy(32)}));
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(Ctx, Entry);
  Value *P1 = B.gep(G, Ctx.getInt(32, 2), /*InBounds=*/true, "p1");
  Value *P2 = B.gep(P1, Ctx.getInt(32, 3), /*InBounds=*/true, "p2");
  Value *PF = B.freeze(P2, "pf");
  Value *PV = B.gep(G, F->arg(0), /*InBounds=*/false, "pv");
  Value *L = B.load(PF, "l");
  B.ret(L);

  // Constant indices accumulate through the chain, scaled by the pointee
  // size (i8 here), and freeze is transparent.
  PointerOffset D = AliasAnalysis::decompose(PF);
  EXPECT_EQ(D.Base, G);
  EXPECT_TRUE(D.HasConstOffset);
  EXPECT_EQ(D.OffsetBytes, 5);

  // A variable index keeps the base but loses the offset.
  PointerOffset DV = AliasAnalysis::decompose(PV);
  EXPECT_EQ(DV.Base, G);
  EXPECT_FALSE(DV.HasConstOffset);

  EXPECT_TRUE(AliasAnalysis::isIdentifiedObject(G));
  EXPECT_FALSE(AliasAnalysis::isIdentifiedObject(PF));
  EXPECT_EQ(AliasAnalysis::objectSizeBytes(G), std::optional<uint64_t>(8));
}

TEST_F(AnalysisTest, AliasSameObject) {
  auto *I8 = Ctx.intTy(8);
  GlobalVariable *G = Ctx.getGlobal("g", I8, 4);
  Function *F = M.createFunction("same", Ctx.types().fnTy(I8, {}));
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(Ctx, Entry);
  Value *P1 = B.gep(G, Ctx.getInt(32, 1), /*InBounds=*/true, "p1");
  Value *P2 = B.gep(G, Ctx.getInt(32, 2), /*InBounds=*/true, "p2");
  B.ret(B.load(P1, "l"));

  AliasAnalysis AA(*F);
  // Identical pointer: MustAlias only with identical extent.
  EXPECT_EQ(AA.alias(G, 8, G, 8), AliasResult::MustAlias);
  EXPECT_EQ(AA.alias(G, 8, G, 16), AliasResult::MayAlias);
  // Same address through distinct GEPs of the same offset.
  Value *P1b = B.gep(G, Ctx.getInt(32, 1), /*InBounds=*/true, "p1b");
  EXPECT_EQ(AA.alias(P1, 8, P1b, 8), AliasResult::MustAlias);
  // Disjoint byte intervals within one object.
  EXPECT_EQ(AA.alias(G, 8, P2, 8), AliasResult::NoAlias);
  EXPECT_EQ(AA.alias(G, 16, P2, 8), AliasResult::NoAlias);
  // Overlapping intervals: a 2-byte access at 0 reaches byte 1.
  EXPECT_EQ(AA.alias(G, 16, P1, 8), AliasResult::MayAlias);
}

TEST_F(AnalysisTest, AliasDistinctObjects) {
  auto *I8 = Ctx.intTy(8);
  GlobalVariable *GA = Ctx.getGlobal("a", I8, 1);
  GlobalVariable *GB = Ctx.getGlobal("b", I8, 1);
  Function *F =
      M.createFunction("distinct", Ctx.types().fnTy(I8, {Ctx.intTy(32)}));
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(Ctx, Entry);
  Value *Slot = B.alloca_(I8, "slot");
  Value *POut = B.gep(GA, Ctx.getInt(32, 1), /*InBounds=*/false, "pout");
  Value *PVar = B.gep(GA, F->arg(0), /*InBounds=*/false, "pvar");
  B.ret(B.load(Slot, "l"));

  AliasAnalysis AA(*F);
  // Both accesses pinned inside their own objects: provably disjoint.
  EXPECT_EQ(AA.alias(GA, 8, GB, 8), AliasResult::NoAlias);
  EXPECT_EQ(AA.alias(Slot, 8, GA, 8), AliasResult::NoAlias);
  // The Figure 5 interpreter's addresses are raw, so an access that steps
  // past the end of its object may land in the neighbour: only in-object
  // constant offsets justify NoAlias across distinct bases.
  EXPECT_EQ(AA.alias(POut, 8, GB, 8), AliasResult::MayAlias);
  EXPECT_EQ(AA.alias(PVar, 8, GB, 8), AliasResult::MayAlias);
}

TEST_F(AnalysisTest, MemorySSAStraightLine) {
  auto *I8 = Ctx.intTy(8);
  GlobalVariable *G = Ctx.getGlobal("g", I8, 1);
  Function *F = M.createFunction("straight", Ctx.types().fnTy(I8, {}));
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(Ctx, Entry);
  Value *L1 = B.load(G, "l1");
  B.store(Ctx.getInt(8, 1), G);
  Value *L2 = B.load(G, "l2");
  B.store(L2, G);
  B.ret(L1);
  ASSERT_TRUE(verifyFunction(*F));

  DominatorTree DT(*F);
  MemorySSA MSSA(*F, DT);
  EXPECT_EQ(MSSA.entryVersion(Entry), 0u); // live-on-entry
  EXPECT_EQ(MSSA.exitVersion(Entry), 2u);  // two stores, two fresh versions
  EXPECT_EQ(MSSA.numVersions(), 3u);

  const std::vector<MemoryAccess> &Acc = MSSA.accesses(Entry);
  ASSERT_EQ(Acc.size(), 4u);
  EXPECT_TRUE(Acc[0].IsUse);
  EXPECT_FALSE(Acc[0].IsDef);
  EXPECT_EQ(Acc[0].VersionBefore, 0u);
  EXPECT_EQ(Acc[0].VersionAfter, 0u); // loads preserve the version
  EXPECT_TRUE(Acc[1].IsDef);
  EXPECT_EQ(Acc[1].VersionBefore, 0u);
  EXPECT_EQ(Acc[1].VersionAfter, 1u);
  EXPECT_EQ(Acc[2].VersionBefore, 1u);
  EXPECT_EQ(Acc[3].VersionAfter, 2u);
  EXPECT_EQ(MSSA.versionBefore(static_cast<Instruction *>(L2)), 1u);
}

TEST_F(AnalysisTest, MemorySSADiamondPhi) {
  auto *I8 = Ctx.intTy(8);
  GlobalVariable *G = Ctx.getGlobal("g", I8, 1);
  Function *F =
      M.createFunction("dmem", Ctx.types().fnTy(I8, {Ctx.intTy(32)}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *A = F->addBlock("a");
  BasicBlock *B2 = F->addBlock("b");
  BasicBlock *Join = F->addBlock("join");
  IRBuilder B(Ctx, Entry);
  B.store(Ctx.getInt(8, 1), G);
  Value *C = B.icmp(ICmpPred::EQ, F->arg(0), Ctx.getInt(32, 0), "c");
  B.condBr(C, A, B2);
  B.setInsertPoint(A);
  B.store(Ctx.getInt(8, 2), G);
  B.br(Join);
  B.setInsertPoint(B2);
  B.br(Join);
  B.setInsertPoint(Join);
  Value *L = B.load(G, "l");
  B.ret(L);
  ASSERT_TRUE(verifyFunction(*F));

  DominatorTree DT(*F);
  MemorySSA MSSA(*F, DT);
  uint64_t AfterEntry = MSSA.exitVersion(Entry);
  EXPECT_EQ(AfterEntry, 1u);
  // Both arms inherit the entry store's version; only `a` defines a new one.
  EXPECT_EQ(MSSA.entryVersion(A), AfterEntry);
  EXPECT_EQ(MSSA.entryVersion(B2), AfterEntry);
  EXPECT_EQ(MSSA.exitVersion(B2), AfterEntry);
  uint64_t AfterA = MSSA.exitVersion(A);
  EXPECT_NE(AfterA, AfterEntry);
  // Disagreeing predecessors merge into a fresh phi version at the join.
  uint64_t JoinV = MSSA.entryVersion(Join);
  EXPECT_NE(JoinV, AfterEntry);
  EXPECT_NE(JoinV, AfterA);
  EXPECT_EQ(MSSA.versionBefore(static_cast<Instruction *>(L)), JoinV);
  EXPECT_EQ(MSSA.exitVersion(Join), JoinV); // the load preserves it
}

TEST_F(AnalysisTest, MemorySSALoopBackEdge) {
  auto *I8 = Ctx.intTy(8);
  GlobalVariable *G = Ctx.getGlobal("g", I8, 1);
  Function *F =
      M.createFunction("lmem", Ctx.types().fnTy(I8, {Ctx.intTy(8)}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Head = F->addBlock("head");
  BasicBlock *Body = F->addBlock("body");
  BasicBlock *Exit = F->addBlock("exit");
  IRBuilder B(Ctx, Entry);
  B.br(Head);
  B.setInsertPoint(Head);
  PhiNode *I = B.phi(I8, "i");
  Value *C = B.icmp(ICmpPred::ULT, I, F->arg(0), "c");
  B.condBr(C, Body, Exit);
  B.setInsertPoint(Body);
  Value *V = B.load(G, "v");
  Value *V1 = B.add(V, I, {}, "v1");
  B.store(V1, G);
  Value *I1 = B.add(I, Ctx.getInt(8, 1), {}, "i1");
  B.br(Head);
  I->addIncoming(Ctx.getInt(8, 0), Entry);
  I->addIncoming(I1, Body);
  B.setInsertPoint(Exit);
  B.ret(Ctx.getInt(8, 0));
  ASSERT_TRUE(verifyFunction(*F));

  DominatorTree DT(*F);
  MemorySSA MSSA(*F, DT);
  // The back edge carries the body's store into the header, so the header
  // cannot reuse live-on-entry: it gets a fresh phi version.
  uint64_t HeadV = MSSA.entryVersion(Head);
  EXPECT_NE(HeadV, 0u);
  EXPECT_NE(HeadV, MSSA.exitVersion(Body));
  // The loop load observes the header phi, not live-on-entry memory.
  EXPECT_EQ(MSSA.versionBefore(static_cast<Instruction *>(V)), HeadV);
  EXPECT_EQ(MSSA.entryVersion(Exit), HeadV);
}

TEST_F(AnalysisTest, AnalysisManagerMemoryInvalidation) {
  auto *I8 = Ctx.intTy(8);
  GlobalVariable *G = Ctx.getGlobal("g", I8, 1);
  Function *F = M.createFunction("inval", Ctx.types().fnTy(I8, {}));
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(Ctx, Entry);
  B.store(Ctx.getInt(8, 7), G);
  B.ret(B.load(G, "l"));
  ASSERT_TRUE(verifyFunction(*F));

  AnalysisManager AM;
  AM.get<AAAnalysis>(*F);
  AM.get<MemorySSAAnalysis>(*F);
  EXPECT_TRUE(AM.isCached<AAAnalysis>(*F));
  EXPECT_TRUE(AM.isCached<MemorySSAAnalysis>(*F));
  // MemorySSA pulls in the dominator tree it is built from.
  EXPECT_TRUE(AM.isCached<DominatorTreeAnalysis>(*F));

  // An instruction-editing, CFG-preserving pass keeps the stateless alias
  // oracle (and the domtree) but must drop the MemorySSA snapshot: its
  // edits may have added or removed memory defs.
  AM.invalidate(*F, preservedCFGAnalyses());
  EXPECT_TRUE(AM.isCached<AAAnalysis>(*F));
  EXPECT_TRUE(AM.isCached<DominatorTreeAnalysis>(*F));
  EXPECT_FALSE(AM.isCached<MemorySSAAnalysis>(*F));

  AM.get<MemorySSAAnalysis>(*F);
  AM.invalidate(*F, PreservedAnalyses::none());
  EXPECT_FALSE(AM.isCached<AAAnalysis>(*F));
  EXPECT_FALSE(AM.isCached<MemorySSAAnalysis>(*F));
  EXPECT_FALSE(AM.isCached<DominatorTreeAnalysis>(*F));
}

} // namespace
