//===- AnalysisTest.cpp - Dominators and loop info tests ----------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace frost;

namespace {

struct AnalysisTest : ::testing::Test {
  IRContext Ctx;
  Module M{Ctx, "test"};

  /// entry -> (a | b) -> join -> exit diamond.
  Function *makeDiamond() {
    auto *I32 = Ctx.intTy(32);
    Function *F = M.createFunction("diamond", Ctx.types().fnTy(I32, {I32}));
    BasicBlock *Entry = F->addBlock("entry");
    BasicBlock *A = F->addBlock("a");
    BasicBlock *B2 = F->addBlock("b");
    BasicBlock *Join = F->addBlock("join");
    IRBuilder B(Ctx, Entry);
    Value *C = B.icmp(ICmpPred::EQ, F->arg(0), Ctx.getInt(32, 0));
    B.condBr(C, A, B2);
    B.setInsertPoint(A);
    B.br(Join);
    B.setInsertPoint(B2);
    B.br(Join);
    B.setInsertPoint(Join);
    B.ret(F->arg(0));
    return F;
  }

  /// entry -> head <-> body, head -> exit counted loop.
  Function *makeLoop() {
    auto *I32 = Ctx.intTy(32);
    Function *F = M.createFunction("loop", Ctx.types().fnTy(I32, {I32}));
    BasicBlock *Entry = F->addBlock("entry");
    BasicBlock *Head = F->addBlock("head");
    BasicBlock *Body = F->addBlock("body");
    BasicBlock *Exit = F->addBlock("exit");
    IRBuilder B(Ctx, Entry);
    B.br(Head);
    B.setInsertPoint(Head);
    PhiNode *I = B.phi(I32, "i");
    Value *C = B.icmp(ICmpPred::SLT, I, F->arg(0), "c");
    B.condBr(C, Body, Exit);
    B.setInsertPoint(Body);
    Value *I1 = B.addNSW(I, Ctx.getInt(32, 1), "i1");
    B.br(Head);
    I->addIncoming(Ctx.getInt(32, 0), Entry);
    I->addIncoming(I1, Body);
    B.setInsertPoint(Exit);
    B.ret(I);
    return F;
  }

  BasicBlock *block(Function *F, const std::string &Name) {
    for (BasicBlock *BB : *F)
      if (BB->getName() == Name)
        return BB;
    return nullptr;
  }
};

TEST_F(AnalysisTest, DiamondDominators) {
  Function *F = makeDiamond();
  ASSERT_TRUE(verifyFunction(*F));
  DominatorTree DT(*F);

  BasicBlock *Entry = block(F, "entry"), *A = block(F, "a"),
             *B2 = block(F, "b"), *Join = block(F, "join");
  EXPECT_EQ(DT.idom(Entry), nullptr);
  EXPECT_EQ(DT.idom(A), Entry);
  EXPECT_EQ(DT.idom(B2), Entry);
  EXPECT_EQ(DT.idom(Join), Entry);
  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(A, Join));
  EXPECT_TRUE(DT.dominates(A, A));
  EXPECT_EQ(DT.rpo().front(), Entry);
  EXPECT_EQ(DT.rpo().size(), 4u);
}

TEST_F(AnalysisTest, InstructionDominance) {
  Function *F = makeLoop();
  ASSERT_TRUE(verifyFunction(*F));
  DominatorTree DT(*F);
  BasicBlock *Head = block(F, "head"), *Body = block(F, "body");

  Instruction *Phi = Head->front();
  Instruction *Cmp = Phi->nextInst();
  Instruction *Inc = Body->front();
  // The phi dominates the cmp in the same block, and the body increment.
  EXPECT_TRUE(DT.dominates(Phi, Cmp, 0));
  EXPECT_TRUE(DT.dominates(Phi, Inc, 0));
  EXPECT_FALSE(DT.dominates(Cmp, Phi, 0));
  // The increment is used by the phi along the back edge: the use point is
  // the end of the body block, which the increment dominates.
  EXPECT_TRUE(DT.dominates(Inc, Phi, 2));
}

TEST_F(AnalysisTest, UnreachableBlocks) {
  Function *F = makeDiamond();
  BasicBlock *Dead = F->addBlock("dead");
  IRBuilder B(Ctx, Dead);
  B.br(block(F, "join"));
  // "dead" jumps into the diamond but nothing reaches it.
  DominatorTree DT(*F);
  EXPECT_FALSE(DT.isReachable(Dead));
  EXPECT_TRUE(DT.isReachable(block(F, "join")));
  // Everything "dominates" an unreachable block by convention.
  EXPECT_TRUE(DT.dominates(block(F, "join"), Dead));
  EXPECT_FALSE(DT.dominates(Dead, block(F, "join")));
}

TEST_F(AnalysisTest, SimpleLoopDetection) {
  Function *F = makeLoop();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);

  BasicBlock *Head = block(F, "head"), *Body = block(F, "body"),
             *Entry = block(F, "entry"), *Exit = block(F, "exit");
  ASSERT_EQ(LI.topLevel().size(), 1u);
  Loop *L = LI.topLevel().front();
  EXPECT_EQ(L->header(), Head);
  EXPECT_TRUE(L->contains(Body));
  EXPECT_FALSE(L->contains(Entry));
  EXPECT_EQ(L->preheader(), Entry);
  EXPECT_EQ(L->latches(), std::vector<BasicBlock *>{Body});
  EXPECT_EQ(L->exitBlocks(), std::vector<BasicBlock *>{Exit});
  EXPECT_EQ(LI.loopFor(Body), L);
  EXPECT_EQ(LI.loopFor(Entry), nullptr);
  EXPECT_EQ(L->depth(), 1u);
}

TEST_F(AnalysisTest, LoopInvariance) {
  Function *F = makeLoop();
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  Loop *L = LI.topLevel().front();

  BasicBlock *Head = block(F, "head");
  Instruction *Phi = Head->front();
  EXPECT_TRUE(L->isLoopInvariant(F->arg(0)));
  EXPECT_TRUE(L->isLoopInvariant(Ctx.getInt(32, 1)));
  EXPECT_FALSE(L->isLoopInvariant(Phi));
}

TEST_F(AnalysisTest, NestedLoops) {
  auto *I32 = Ctx.intTy(32);
  Function *F = M.createFunction("nest", Ctx.types().fnTy(I32, {I32}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *OuterH = F->addBlock("outer");
  BasicBlock *InnerH = F->addBlock("inner");
  BasicBlock *InnerL = F->addBlock("inner.latch");
  BasicBlock *OuterL = F->addBlock("outer.latch");
  BasicBlock *Exit = F->addBlock("exit");

  IRBuilder B(Ctx, Entry);
  B.br(OuterH);
  B.setInsertPoint(OuterH);
  PhiNode *I = B.phi(I32, "i");
  Value *CO = B.icmp(ICmpPred::SLT, I, F->arg(0), "co");
  B.condBr(CO, InnerH, Exit);
  B.setInsertPoint(InnerH);
  PhiNode *J = B.phi(I32, "j");
  Value *CI = B.icmp(ICmpPred::SLT, J, F->arg(0), "ci");
  B.condBr(CI, InnerL, OuterL);
  B.setInsertPoint(InnerL);
  Value *J1 = B.addNSW(J, Ctx.getInt(32, 1), "j1");
  B.br(InnerH);
  B.setInsertPoint(OuterL);
  Value *I1 = B.addNSW(I, Ctx.getInt(32, 1), "i1");
  B.br(OuterH);
  B.setInsertPoint(Exit);
  B.ret(I);
  I->addIncoming(Ctx.getInt(32, 0), Entry);
  I->addIncoming(I1, OuterL);
  J->addIncoming(Ctx.getInt(32, 0), OuterH);
  J->addIncoming(J1, InnerL);
  ASSERT_TRUE(verifyFunction(*F));

  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.topLevel().size(), 1u);
  Loop *Outer = LI.topLevel().front();
  ASSERT_EQ(Outer->subLoops().size(), 1u);
  Loop *Inner = Outer->subLoops().front();
  EXPECT_EQ(Inner->header(), InnerH);
  EXPECT_EQ(Inner->parent(), Outer);
  EXPECT_EQ(Inner->depth(), 2u);
  EXPECT_EQ(LI.loopFor(InnerL), Inner);
  EXPECT_EQ(LI.loopFor(OuterL), Outer);

  std::vector<Loop *> Ordered = LI.loopsInnermostFirst();
  ASSERT_EQ(Ordered.size(), 2u);
  EXPECT_EQ(Ordered.front(), Inner);
}

} // namespace
