//===- BitVecTest.cpp - Unit tests for BitVec --------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/BitVec.h"

#include <gtest/gtest.h>

using namespace frost;

namespace {

TEST(BitVecTest, ConstructionMasksToWidth) {
  EXPECT_EQ(BitVec(4, 0x1F).zext(), 0xFu);
  EXPECT_EQ(BitVec(8, 0x100).zext(), 0u);
  EXPECT_EQ(BitVec(64, ~uint64_t(0)).zext(), ~uint64_t(0));
}

TEST(BitVecTest, SignExtension) {
  EXPECT_EQ(BitVec(4, 0x8).sext(), -8);
  EXPECT_EQ(BitVec(4, 0x7).sext(), 7);
  EXPECT_EQ(BitVec(1, 1).sext(), -1);
  EXPECT_EQ(BitVec(32, 0xFFFFFFFFu).sext(), -1);
}

TEST(BitVecTest, MinMaxSigned) {
  EXPECT_EQ(BitVec::minSigned(8).sext(), -128);
  EXPECT_EQ(BitVec::maxSigned(8).sext(), 127);
  EXPECT_TRUE(BitVec::minSigned(8).isMinSigned());
  EXPECT_TRUE(BitVec::allOnes(3).isAllOnes());
}

TEST(BitVecTest, WrappingArithmetic) {
  BitVec A(8, 200), B(8, 100);
  EXPECT_EQ(A.add(B).zext(), 44u); // 300 mod 256.
  EXPECT_EQ(B.sub(A).zext(), 156u);
  EXPECT_EQ(A.mul(B).zext(), (200u * 100u) & 0xFF);
  EXPECT_EQ(A.neg().zext(), 56u);
}

TEST(BitVecTest, DivisionAndRemainder) {
  EXPECT_EQ(BitVec(8, 200).udiv(BitVec(8, 3)).zext(), 66u);
  EXPECT_EQ(BitVec(8, 200).urem(BitVec(8, 3)).zext(), 2u);
  // -100 / 3 = -33 in C semantics (truncation toward zero).
  EXPECT_EQ(BitVec(8, 156).sdiv(BitVec(8, 3)).sext(), -33);
  EXPECT_EQ(BitVec(8, 156).srem(BitVec(8, 3)).sext(), -1);
}

TEST(BitVecTest, Shifts) {
  EXPECT_EQ(BitVec(8, 0b1011).shl(BitVec(8, 2)).zext(), 0b101100u);
  EXPECT_EQ(BitVec(8, 0b10110000).lshr(BitVec(8, 4)).zext(), 0b1011u);
  EXPECT_EQ(BitVec(8, 0x80).ashr(BitVec(8, 7)).zext(), 0xFFu);
  EXPECT_TRUE(BitVec(8, 8).shiftTooBig());
  EXPECT_FALSE(BitVec(8, 7).shiftTooBig());
}

TEST(BitVecTest, Bitwise) {
  BitVec A(4, 0b1100), B(4, 0b1010);
  EXPECT_EQ(A.and_(B).zext(), 0b1000u);
  EXPECT_EQ(A.or_(B).zext(), 0b1110u);
  EXPECT_EQ(A.xor_(B).zext(), 0b0110u);
  EXPECT_EQ(A.not_().zext(), 0b0011u);
}

TEST(BitVecTest, Comparisons) {
  BitVec A(4, 0xF), B(4, 1); // A = -1 signed, 15 unsigned.
  EXPECT_TRUE(B.ult(A));
  EXPECT_TRUE(A.slt(B));
  EXPECT_TRUE(A.sle(A));
  EXPECT_TRUE(A.eq(A));
  EXPECT_FALSE(A.eq(B));
}

TEST(BitVecTest, WidthChanges) {
  EXPECT_EQ(BitVec(8, 0xAB).truncTo(4).zext(), 0xBu);
  EXPECT_EQ(BitVec(4, 0xF).zextTo(8).zext(), 0x0Fu);
  EXPECT_EQ(BitVec(4, 0xF).sextTo(8).zext(), 0xFFu);
  EXPECT_EQ(BitVec(4, 0x7).sextTo(8).zext(), 0x07u);
}

TEST(BitVecTest, CountingOps) {
  EXPECT_EQ(BitVec(8, 0b00110000).countTrailingZeros(), 4u);
  EXPECT_EQ(BitVec(8, 0).countTrailingZeros(), 8u);
  EXPECT_EQ(BitVec(8, 0b00110000).countLeadingZeros(), 2u);
  EXPECT_EQ(BitVec(8, 0b00110001).popCount(), 3u);
  EXPECT_TRUE(BitVec(8, 64).isPowerOf2());
  EXPECT_FALSE(BitVec(8, 0).isPowerOf2());
  EXPECT_FALSE(BitVec(8, 65).isPowerOf2());
}

TEST(BitVecTest, SDivOverflowPredicate) {
  EXPECT_TRUE(BitVec::minSigned(8).sdivOverflows(BitVec::allOnes(8)));
  EXPECT_FALSE(BitVec(8, 4).sdivOverflows(BitVec::allOnes(8)));
  EXPECT_FALSE(BitVec::minSigned(8).sdivOverflows(BitVec(8, 2)));
}

// Exhaustive 4-bit validation of every overflow predicate against 64-bit
// reference arithmetic: the nsw/nuw poison rules of Figure 5 are built on
// these.
class OverflowExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(OverflowExhaustiveTest, PredicatesMatchWideArithmetic) {
  const unsigned W = 4;
  int AV = GetParam();
  BitVec A(W, AV);
  for (int BV = 0; BV < 16; ++BV) {
    BitVec B(W, BV);
    int64_t SA = A.sext(), SB = B.sext();
    uint64_t UA = A.zext(), UB = B.zext();

    EXPECT_EQ(A.saddOverflows(B), SA + SB > 7 || SA + SB < -8);
    EXPECT_EQ(A.uaddOverflows(B), UA + UB > 15);
    EXPECT_EQ(A.ssubOverflows(B), SA - SB > 7 || SA - SB < -8);
    EXPECT_EQ(A.usubOverflows(B), UB > UA);
    EXPECT_EQ(A.smulOverflows(B), SA * SB > 7 || SA * SB < -8);
    EXPECT_EQ(A.umulOverflows(B), UA * UB > 15);

    if (BV < 4) { // In-range shift amounts only.
      int64_t Shifted = static_cast<int64_t>(UA << UB);
      EXPECT_EQ(A.shlUnsignedOverflows(B), Shifted > 15);
      int64_t SignedBack = BitVec(W, static_cast<uint64_t>(Shifted)).sext();
      EXPECT_EQ(A.shlSignedOverflows(B), (SignedBack >> UB) != SA);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLHS, OverflowExhaustiveTest,
                         ::testing::Range(0, 16));

TEST(BitVecTest, Strings) {
  EXPECT_EQ(BitVec(8, 255).toString(), "255");
  EXPECT_EQ(BitVec(8, 255).toSignedString(), "-1");
}

} // namespace
