//===- SemUnitTest.cpp - Oracle, memory, and domain unit tests -----------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "sem/Memory.h"
#include "sem/Oracle.h"

#include <gtest/gtest.h>

#include <set>

using namespace frost;
using frost::sem::ChoiceOracle;
using frost::sem::Lane;
using frost::sem::MemBit;
using frost::sem::Memory;
using frost::sem::PathEnumerator;
using frost::sem::RandomOracle;
using frost::sem::SemanticsConfig;
using frost::sem::liftValue;
using frost::sem::lowerValue;
using frost::sem::memBitRefines;

namespace {

//===----------------------------------------------------------------------===//
// PathEnumerator: the engine behind exhaustive validation.
//===----------------------------------------------------------------------===//

TEST(OracleTest, EnumeratesAllPathsOfFixedShape) {
  // Two choice points of 3 and 2 alternatives: 6 paths.
  PathEnumerator E;
  std::set<std::pair<uint64_t, uint64_t>> Seen;
  bool Complete = E.enumerate([&](ChoiceOracle &O) {
    uint64_t A = O.choose(3), B = O.choose(2);
    Seen.insert({A, B});
    return true;
  });
  EXPECT_TRUE(Complete);
  EXPECT_EQ(Seen.size(), 6u);
  EXPECT_EQ(E.pathsExplored(), 6u);
}

TEST(OracleTest, EnumeratesDataDependentShapes) {
  // The second choice point only exists on one branch of the first.
  PathEnumerator E;
  std::set<uint64_t> Outcomes;
  E.enumerate([&](ChoiceOracle &O) {
    uint64_t A = O.choose(2);
    uint64_t V = A == 0 ? 100 + O.choose(3) : 200;
    Outcomes.insert(V);
    return true;
  });
  EXPECT_EQ(Outcomes, (std::set<uint64_t>{100, 101, 102, 200}));
}

TEST(OracleTest, BudgetExhaustionIsReported) {
  PathEnumerator E;
  bool Complete = E.enumerate(
      [&](ChoiceOracle &O) {
        O.choose(4);
        O.choose(4);
        O.choose(4);
        return true;
      },
      /*MaxPaths=*/10);
  EXPECT_FALSE(Complete); // 64 paths do not fit in a budget of 10.
}

TEST(OracleTest, EarlyAbortStopsEnumeration) {
  PathEnumerator E;
  unsigned Runs = 0;
  bool Complete = E.enumerate([&](ChoiceOracle &O) {
    O.choose(8);
    return ++Runs < 3;
  });
  EXPECT_TRUE(Complete); // Abort is not a budget failure.
  EXPECT_EQ(Runs, 3u);
}

TEST(OracleTest, ChooseBitsIsExhaustiveForNarrowWidths) {
  PathEnumerator E;
  std::set<uint64_t> Values;
  E.enumerate([&](ChoiceOracle &O) {
    Values.insert(O.chooseBits(3).zext());
    return true;
  });
  EXPECT_EQ(Values.size(), 8u); // All of i3.
}

TEST(OracleTest, RandomOracleIsDeterministicPerSeed) {
  RandomOracle A(42), B(42), C(43);
  bool Differs = false;
  for (int I = 0; I != 16; ++I) {
    uint64_t VA = A.choose(1000), VB = B.choose(1000), VC = C.choose(1000);
    EXPECT_EQ(VA, VB);
    Differs |= VA != VC;
  }
  EXPECT_TRUE(Differs);
}

//===----------------------------------------------------------------------===//
// Memory: Figure 5's bitwise-defined bytes.
//===----------------------------------------------------------------------===//

TEST(MemoryTest, AllocateLoadStoreRoundTrip) {
  Memory M;
  uint32_t P = M.allocate(4);
  EXPECT_TRUE(M.validRange(P, 32));
  EXPECT_FALSE(M.validRange(P, 40));
  EXPECT_FALSE(M.validRange(P + 4, 8));

  std::vector<MemBit> Bits(8, MemBit::One);
  Bits[0] = MemBit::Zero;
  EXPECT_TRUE(M.store(P, Bits));
  std::vector<MemBit> Out;
  ASSERT_TRUE(M.load(P, 8, Out));
  EXPECT_EQ(Out, Bits);
}

TEST(MemoryTest, FreshMemoryIsUninitialized) {
  Memory M;
  uint32_t P = M.allocate(1);
  std::vector<MemBit> Out;
  ASSERT_TRUE(M.load(P, 8, Out));
  for (MemBit B : Out)
    EXPECT_EQ(B, MemBit::Uninit);
}

TEST(MemoryTest, BlocksDoNotAlias) {
  Memory M;
  uint32_t A = M.allocate(4), B = M.allocate(4);
  EXPECT_NE(A, B);
  // The gap between blocks is invalid.
  EXPECT_FALSE(M.validRange(A + 4, 8));
  (void)B;
}

TEST(MemoryTest, LowerLiftRoundTripsScalars) {
  IRContext Ctx;
  SemanticsConfig Proposed = SemanticsConfig::proposed();
  Type *I8 = Ctx.intTy(8);

  sem::Value V = sem::Value::concrete(BitVec(8, 0xA5));
  std::vector<MemBit> Bits = lowerValue(V, I8);
  ASSERT_EQ(Bits.size(), 8u);
  EXPECT_EQ(liftValue(Bits, I8, Proposed), V);

  // Poison lowers to all-poison bits and lifts back to poison.
  std::vector<MemBit> PBits = lowerValue(sem::Value::poison(), I8);
  for (MemBit B : PBits)
    EXPECT_EQ(B, MemBit::Poison);
  EXPECT_TRUE(liftValue(PBits, I8, Proposed).scalar().isPoison());
}

TEST(MemoryTest, OnePoisonBitPoisonsTheScalarButNotTheVector) {
  IRContext Ctx;
  SemanticsConfig Proposed = SemanticsConfig::proposed();
  Type *I8 = Ctx.intTy(8);
  Type *V8 = Ctx.vecTy(Ctx.boolTy(), 8);

  std::vector<MemBit> Bits(8, MemBit::Zero);
  Bits[3] = MemBit::Poison;
  // Figure 5 ty-up: a base type with any poison bit is poison...
  EXPECT_TRUE(liftValue(Bits, I8, Proposed).scalar().isPoison());
  // ...but the <8 x i1> view isolates the poison to one lane (the fact
  // that makes Section 5.4 load widening sound).
  sem::Value AsVec = liftValue(Bits, V8, Proposed);
  unsigned PoisonLanes = 0;
  for (const Lane &L : AsVec.Lanes)
    PoisonLanes += L.isPoison();
  EXPECT_EQ(PoisonLanes, 1u);
}

TEST(MemoryTest, UninitBitsFollowTheConfiguredSemantics) {
  IRContext Ctx;
  Type *I4 = Ctx.intTy(4);
  std::vector<MemBit> Bits(4, MemBit::Uninit);
  EXPECT_TRUE(liftValue(Bits, I4, SemanticsConfig::proposed())
                  .scalar()
                  .isPoison());
  EXPECT_TRUE(liftValue(Bits, I4, SemanticsConfig::legacyUnswitch())
                  .scalar()
                  .isUndef());
}

TEST(MemoryTest, MemBitRefinementOrder) {
  EXPECT_TRUE(memBitRefines(MemBit::Zero, MemBit::Poison));
  EXPECT_TRUE(memBitRefines(MemBit::One, MemBit::Poison));
  EXPECT_TRUE(memBitRefines(MemBit::Undef, MemBit::Poison));
  EXPECT_TRUE(memBitRefines(MemBit::Zero, MemBit::Undef));
  EXPECT_FALSE(memBitRefines(MemBit::Poison, MemBit::Undef));
  EXPECT_FALSE(memBitRefines(MemBit::Poison, MemBit::Zero));
  EXPECT_FALSE(memBitRefines(MemBit::One, MemBit::Zero));
  EXPECT_TRUE(memBitRefines(MemBit::One, MemBit::One));
}

//===----------------------------------------------------------------------===//
// Lane / value refinement order.
//===----------------------------------------------------------------------===//

TEST(DomainTest, LaneRefinementOrder) {
  Lane C1 = Lane::concrete(BitVec(4, 1));
  Lane C2 = Lane::concrete(BitVec(4, 2));
  Lane U = Lane::undef(), P = Lane::poison();

  // concrete <= undef <= poison.
  EXPECT_TRUE(C1.refines(P));
  EXPECT_TRUE(U.refines(P));
  EXPECT_TRUE(P.refines(P));
  EXPECT_TRUE(C1.refines(U));
  EXPECT_TRUE(U.refines(U));
  EXPECT_FALSE(P.refines(U));
  EXPECT_TRUE(C1.refines(C1));
  EXPECT_FALSE(C2.refines(C1));
  EXPECT_FALSE(U.refines(C1));
  EXPECT_FALSE(P.refines(C1));
}

TEST(DomainTest, VectorRefinementIsLaneWise) {
  sem::Value A(
      std::vector<Lane>{Lane::concrete(BitVec(4, 1)), Lane::poison()});
  sem::Value B(std::vector<Lane>{Lane::concrete(BitVec(4, 1)),
                                 Lane::concrete(BitVec(4, 9))});
  EXPECT_TRUE(B.refines(A));  // Poison lane refined to a value.
  EXPECT_FALSE(A.refines(B)); // Value lane cannot become poison.
}

} // namespace
