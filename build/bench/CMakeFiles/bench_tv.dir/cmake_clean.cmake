file(REMOVE_RECURSE
  "CMakeFiles/bench_tv.dir/TVBench.cpp.o"
  "CMakeFiles/bench_tv.dir/TVBench.cpp.o.d"
  "bench_tv"
  "bench_tv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
