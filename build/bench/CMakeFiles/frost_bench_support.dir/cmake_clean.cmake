file(REMOVE_RECURSE
  "CMakeFiles/frost_bench_support.dir/Kernels.cpp.o"
  "CMakeFiles/frost_bench_support.dir/Kernels.cpp.o.d"
  "libfrost_bench_support.a"
  "libfrost_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frost_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
