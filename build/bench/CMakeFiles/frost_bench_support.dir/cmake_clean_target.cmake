file(REMOVE_RECURSE
  "libfrost_bench_support.a"
)
