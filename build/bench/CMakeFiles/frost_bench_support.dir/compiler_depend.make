# Empty compiler generated dependencies file for frost_bench_support.
# This may be replaced when dependencies are built.
