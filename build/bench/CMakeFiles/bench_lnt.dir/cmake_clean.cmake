file(REMOVE_RECURSE
  "CMakeFiles/bench_lnt.dir/LNTBench.cpp.o"
  "CMakeFiles/bench_lnt.dir/LNTBench.cpp.o.d"
  "bench_lnt"
  "bench_lnt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lnt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
