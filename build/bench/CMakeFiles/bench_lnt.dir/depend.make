# Empty dependencies file for bench_lnt.
# This may be replaced when dependencies are built.
