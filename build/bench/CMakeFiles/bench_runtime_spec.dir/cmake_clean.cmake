file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_spec.dir/RuntimeSpec.cpp.o"
  "CMakeFiles/bench_runtime_spec.dir/RuntimeSpec.cpp.o.d"
  "bench_runtime_spec"
  "bench_runtime_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
