file(REMOVE_RECURSE
  "CMakeFiles/sem_unit_test.dir/SemUnitTest.cpp.o"
  "CMakeFiles/sem_unit_test.dir/SemUnitTest.cpp.o.d"
  "sem_unit_test"
  "sem_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sem_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
