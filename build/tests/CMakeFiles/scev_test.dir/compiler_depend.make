# Empty compiler generated dependencies file for scev_test.
# This may be replaced when dependencies are built.
