file(REMOVE_RECURSE
  "CMakeFiles/scev_test.dir/ScalarEvolutionTest.cpp.o"
  "CMakeFiles/scev_test.dir/ScalarEvolutionTest.cpp.o.d"
  "scev_test"
  "scev_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
