# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bitvec_test "/root/repo/build/tests/bitvec_test")
set_tests_properties(bitvec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ir_test "/root/repo/build/tests/ir_test")
set_tests_properties(ir_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(interp_test "/root/repo/build/tests/interp_test")
set_tests_properties(interp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tv_test "/root/repo/build/tests/tv_test")
set_tests_properties(tv_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(parser_test "/root/repo/build/tests/parser_test")
set_tests_properties(parser_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(passes_test "/root/repo/build/tests/passes_test")
set_tests_properties(passes_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fuzz_test "/root/repo/build/tests/fuzz_test")
set_tests_properties(fuzz_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(codegen_test "/root/repo/build/tests/codegen_test")
set_tests_properties(codegen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(frontend_test "/root/repo/build/tests/frontend_test")
set_tests_properties(frontend_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(scev_test "/root/repo/build/tests/scev_test")
set_tests_properties(scev_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sem_unit_test "/root/repo/build/tests/sem_unit_test")
set_tests_properties(sem_unit_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;frost_add_test;/root/repo/tests/CMakeLists.txt;0;")
