file(REMOVE_RECURSE
  "libfrost.a"
)
