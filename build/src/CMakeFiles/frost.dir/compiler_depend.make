# Empty compiler generated dependencies file for frost.
# This may be replaced when dependencies are built.
