
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Dominators.cpp" "src/CMakeFiles/frost.dir/analysis/Dominators.cpp.o" "gcc" "src/CMakeFiles/frost.dir/analysis/Dominators.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/CMakeFiles/frost.dir/analysis/LoopInfo.cpp.o" "gcc" "src/CMakeFiles/frost.dir/analysis/LoopInfo.cpp.o.d"
  "/root/repo/src/analysis/ScalarEvolution.cpp" "src/CMakeFiles/frost.dir/analysis/ScalarEvolution.cpp.o" "gcc" "src/CMakeFiles/frost.dir/analysis/ScalarEvolution.cpp.o.d"
  "/root/repo/src/analysis/ValueTracking.cpp" "src/CMakeFiles/frost.dir/analysis/ValueTracking.cpp.o" "gcc" "src/CMakeFiles/frost.dir/analysis/ValueTracking.cpp.o.d"
  "/root/repo/src/codegen/Codegen.cpp" "src/CMakeFiles/frost.dir/codegen/Codegen.cpp.o" "gcc" "src/CMakeFiles/frost.dir/codegen/Codegen.cpp.o.d"
  "/root/repo/src/codegen/MIR.cpp" "src/CMakeFiles/frost.dir/codegen/MIR.cpp.o" "gcc" "src/CMakeFiles/frost.dir/codegen/MIR.cpp.o.d"
  "/root/repo/src/codegen/MachineSim.cpp" "src/CMakeFiles/frost.dir/codegen/MachineSim.cpp.o" "gcc" "src/CMakeFiles/frost.dir/codegen/MachineSim.cpp.o.d"
  "/root/repo/src/codegen/RegAlloc.cpp" "src/CMakeFiles/frost.dir/codegen/RegAlloc.cpp.o" "gcc" "src/CMakeFiles/frost.dir/codegen/RegAlloc.cpp.o.d"
  "/root/repo/src/frontend/BitFields.cpp" "src/CMakeFiles/frost.dir/frontend/BitFields.cpp.o" "gcc" "src/CMakeFiles/frost.dir/frontend/BitFields.cpp.o.d"
  "/root/repo/src/fuzz/Enumerate.cpp" "src/CMakeFiles/frost.dir/fuzz/Enumerate.cpp.o" "gcc" "src/CMakeFiles/frost.dir/fuzz/Enumerate.cpp.o.d"
  "/root/repo/src/fuzz/RandomProgram.cpp" "src/CMakeFiles/frost.dir/fuzz/RandomProgram.cpp.o" "gcc" "src/CMakeFiles/frost.dir/fuzz/RandomProgram.cpp.o.d"
  "/root/repo/src/ir/BasicBlock.cpp" "src/CMakeFiles/frost.dir/ir/BasicBlock.cpp.o" "gcc" "src/CMakeFiles/frost.dir/ir/BasicBlock.cpp.o.d"
  "/root/repo/src/ir/Cloning.cpp" "src/CMakeFiles/frost.dir/ir/Cloning.cpp.o" "gcc" "src/CMakeFiles/frost.dir/ir/Cloning.cpp.o.d"
  "/root/repo/src/ir/Context.cpp" "src/CMakeFiles/frost.dir/ir/Context.cpp.o" "gcc" "src/CMakeFiles/frost.dir/ir/Context.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/CMakeFiles/frost.dir/ir/Function.cpp.o" "gcc" "src/CMakeFiles/frost.dir/ir/Function.cpp.o.d"
  "/root/repo/src/ir/Instruction.cpp" "src/CMakeFiles/frost.dir/ir/Instruction.cpp.o" "gcc" "src/CMakeFiles/frost.dir/ir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Instructions.cpp" "src/CMakeFiles/frost.dir/ir/Instructions.cpp.o" "gcc" "src/CMakeFiles/frost.dir/ir/Instructions.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "src/CMakeFiles/frost.dir/ir/Module.cpp.o" "gcc" "src/CMakeFiles/frost.dir/ir/Module.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/frost.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/frost.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/CMakeFiles/frost.dir/ir/Type.cpp.o" "gcc" "src/CMakeFiles/frost.dir/ir/Type.cpp.o.d"
  "/root/repo/src/ir/Value.cpp" "src/CMakeFiles/frost.dir/ir/Value.cpp.o" "gcc" "src/CMakeFiles/frost.dir/ir/Value.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/frost.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/frost.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/opt/CodeGenPrepare.cpp" "src/CMakeFiles/frost.dir/opt/CodeGenPrepare.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/CodeGenPrepare.cpp.o.d"
  "/root/repo/src/opt/DCE.cpp" "src/CMakeFiles/frost.dir/opt/DCE.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/DCE.cpp.o.d"
  "/root/repo/src/opt/GVN.cpp" "src/CMakeFiles/frost.dir/opt/GVN.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/GVN.cpp.o.d"
  "/root/repo/src/opt/IndVarWiden.cpp" "src/CMakeFiles/frost.dir/opt/IndVarWiden.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/IndVarWiden.cpp.o.d"
  "/root/repo/src/opt/InstCombine.cpp" "src/CMakeFiles/frost.dir/opt/InstCombine.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/InstCombine.cpp.o.d"
  "/root/repo/src/opt/InstSimplify.cpp" "src/CMakeFiles/frost.dir/opt/InstSimplify.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/InstSimplify.cpp.o.d"
  "/root/repo/src/opt/LICM.cpp" "src/CMakeFiles/frost.dir/opt/LICM.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/LICM.cpp.o.d"
  "/root/repo/src/opt/LoopUnswitch.cpp" "src/CMakeFiles/frost.dir/opt/LoopUnswitch.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/LoopUnswitch.cpp.o.d"
  "/root/repo/src/opt/Pass.cpp" "src/CMakeFiles/frost.dir/opt/Pass.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/Pass.cpp.o.d"
  "/root/repo/src/opt/Reassociate.cpp" "src/CMakeFiles/frost.dir/opt/Reassociate.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/Reassociate.cpp.o.d"
  "/root/repo/src/opt/SCCP.cpp" "src/CMakeFiles/frost.dir/opt/SCCP.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/SCCP.cpp.o.d"
  "/root/repo/src/opt/SimplifyCFG.cpp" "src/CMakeFiles/frost.dir/opt/SimplifyCFG.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/SimplifyCFG.cpp.o.d"
  "/root/repo/src/opt/Utils.cpp" "src/CMakeFiles/frost.dir/opt/Utils.cpp.o" "gcc" "src/CMakeFiles/frost.dir/opt/Utils.cpp.o.d"
  "/root/repo/src/parser/Lexer.cpp" "src/CMakeFiles/frost.dir/parser/Lexer.cpp.o" "gcc" "src/CMakeFiles/frost.dir/parser/Lexer.cpp.o.d"
  "/root/repo/src/parser/Parser.cpp" "src/CMakeFiles/frost.dir/parser/Parser.cpp.o" "gcc" "src/CMakeFiles/frost.dir/parser/Parser.cpp.o.d"
  "/root/repo/src/sem/Domain.cpp" "src/CMakeFiles/frost.dir/sem/Domain.cpp.o" "gcc" "src/CMakeFiles/frost.dir/sem/Domain.cpp.o.d"
  "/root/repo/src/sem/Eval.cpp" "src/CMakeFiles/frost.dir/sem/Eval.cpp.o" "gcc" "src/CMakeFiles/frost.dir/sem/Eval.cpp.o.d"
  "/root/repo/src/sem/Interp.cpp" "src/CMakeFiles/frost.dir/sem/Interp.cpp.o" "gcc" "src/CMakeFiles/frost.dir/sem/Interp.cpp.o.d"
  "/root/repo/src/sem/Memory.cpp" "src/CMakeFiles/frost.dir/sem/Memory.cpp.o" "gcc" "src/CMakeFiles/frost.dir/sem/Memory.cpp.o.d"
  "/root/repo/src/sem/Oracle.cpp" "src/CMakeFiles/frost.dir/sem/Oracle.cpp.o" "gcc" "src/CMakeFiles/frost.dir/sem/Oracle.cpp.o.d"
  "/root/repo/src/support/BitVec.cpp" "src/CMakeFiles/frost.dir/support/BitVec.cpp.o" "gcc" "src/CMakeFiles/frost.dir/support/BitVec.cpp.o.d"
  "/root/repo/src/support/ErrorHandling.cpp" "src/CMakeFiles/frost.dir/support/ErrorHandling.cpp.o" "gcc" "src/CMakeFiles/frost.dir/support/ErrorHandling.cpp.o.d"
  "/root/repo/src/support/MemStats.cpp" "src/CMakeFiles/frost.dir/support/MemStats.cpp.o" "gcc" "src/CMakeFiles/frost.dir/support/MemStats.cpp.o.d"
  "/root/repo/src/tv/Refinement.cpp" "src/CMakeFiles/frost.dir/tv/Refinement.cpp.o" "gcc" "src/CMakeFiles/frost.dir/tv/Refinement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
