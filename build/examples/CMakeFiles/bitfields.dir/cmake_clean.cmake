file(REMOVE_RECURSE
  "CMakeFiles/bitfields.dir/bitfields.cpp.o"
  "CMakeFiles/bitfields.dir/bitfields.cpp.o.d"
  "bitfields"
  "bitfields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitfields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
