# Empty compiler generated dependencies file for bitfields.
# This may be replaced when dependencies are built.
