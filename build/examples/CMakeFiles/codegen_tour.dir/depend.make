# Empty dependencies file for codegen_tour.
# This may be replaced when dependencies are built.
