# Empty compiler generated dependencies file for inconsistencies.
# This may be replaced when dependencies are built.
