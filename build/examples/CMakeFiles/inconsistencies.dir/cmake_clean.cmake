file(REMOVE_RECURSE
  "CMakeFiles/inconsistencies.dir/inconsistencies.cpp.o"
  "CMakeFiles/inconsistencies.dir/inconsistencies.cpp.o.d"
  "inconsistencies"
  "inconsistencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inconsistencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
